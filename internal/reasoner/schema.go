// Package reasoner implements a forward-chaining materializer for the OWL 2
// RL fragment that the Food Explanation Ontology (FEO) uses. It substitutes
// for the Pellet reasoner the paper runs before exporting inferred axioms:
// after Materialize, the graph contains every triple Listings 1-3 of the
// paper query for — transitive characteristic closures, inverse-property
// completions, sub-property inheritance, and equivalent-class membership
// (including intersection and restriction classes such as eo:Fact/eo:Foil).
//
// Two evaluation strategies are provided: semi-naive (delta-driven, the
// default) and naive (full re-evaluation each round, kept for the ablation
// benchmark that reproduces the paper's "a reasoner known to handle
// individuals more efficiently" motivation for choosing Pellet).
//
// The semi-naive engine is additionally *incremental across runs*: after a
// completed materialization, MaterializeDelta/MaterializeChanges seed the
// queue with only the newly added triples and patch the expression table
// in place, so re-classifying the graph after a small assertion (the
// explain-time question individuals, an INSERT DATA, a loaded document)
// costs time proportional to the delta's consequences, not the graph. See
// the Reasoner type's doc comment for the exact contract and fallback
// conditions.
//
// The engine is dictionary-encoded end to end: triples enter the rule queue
// as store.ID triples, rule joins probe the store's ID indexes, and terms
// are only decoded at the public API boundary (Derivation, Proof) or when
// TraceDerivations is on.
package reasoner

import (
	"repro/internal/store"
)

// restriction describes an owl:Restriction node after structural parsing.
// Exactly one of SomeFrom, AllFrom, HasValue is set (the others are NoID).
type restriction struct {
	Node     store.ID // the restriction class node (usually a blank node)
	Prop     store.ID // owl:onProperty
	SomeFrom store.ID // owl:someValuesFrom filler, or NoID
	AllFrom  store.ID // owl:allValuesFrom filler, or NoID
	HasValue store.ID // owl:hasValue value, or NoID
}

// exprTable indexes OWL class expressions (intersections, unions,
// restrictions, property chains) for O(1) lookup during rule application,
// keyed by term ID. It is built from the whole graph once per full
// Materialize and then maintained incrementally: every structural triple
// that arrives later — in a delta seed or as a fresh inference — patches
// exactly the entries it touches (updateExpr), and the patched expression
// is re-activated against existing instances. rdf:first/rdf:rest triples
// patch the expressions whose member lists they extend, found by walking
// rest-edges back to the list head. Only removals of structural triples
// invalidate the table wholesale (the delta path falls back to a full
// rebuild in that case).
type exprTable struct {
	// intersections maps a class to its owl:intersectionOf member list.
	intersections map[store.ID][]store.ID
	// memberOfIntersection maps a member class to the intersection classes
	// that contain it.
	memberOfIntersection map[store.ID][]store.ID
	unions               map[store.ID][]store.ID
	memberOfUnion        map[store.ID][]store.ID
	// restrictionsByProp maps a property to the restrictions on it.
	restrictionsByProp map[store.ID][]restriction
	// byNode maps a restriction node to its parsed form.
	byNode map[store.ID]restriction
	// svfByFiller maps a someValuesFrom filler class to restrictions using it.
	svfByFiller map[store.ID][]restriction
	// chains holds owl:propertyChainAxiom definitions: super-property and
	// the chain of step properties. Re-parsed entries leave a nil-Steps
	// placeholder (index stability) but are unlinked from chainsByStep.
	chains []chain
	// chainsByStep indexes live chains by each property appearing in them.
	chainsByStep map[store.ID][]int
	// chainsBySuper indexes live chains by super-property, for re-parsing.
	chainsBySuper map[store.ID][]int
}

// chain is one owl:propertyChainAxiom: steps[0] ∘ steps[1] ∘ … ⊑ super.
type chain struct {
	Super store.ID
	Steps []store.ID
}

func newExprTable() *exprTable {
	return &exprTable{
		intersections:        make(map[store.ID][]store.ID),
		memberOfIntersection: make(map[store.ID][]store.ID),
		unions:               make(map[store.ID][]store.ID),
		memberOfUnion:        make(map[store.ID][]store.ID),
		restrictionsByProp:   make(map[store.ID][]restriction),
		byNode:               make(map[store.ID]restriction),
		svfByFiller:          make(map[store.ID][]restriction),
		chainsByStep:         make(map[store.ID][]int),
		chainsBySuper:        make(map[store.ID][]int),
	}
}

func buildExprTable(g *store.Graph, v vocab) *exprTable {
	t := newExprTable()
	g.ForEachID(store.NoID, v.inter, store.NoID, func(s, _, o store.ID) bool {
		if members, ok := g.ReadListID(o); ok && len(members) > 0 {
			t.intersections[s] = members
			for _, m := range members {
				t.memberOfIntersection[m] = append(t.memberOfIntersection[m], s)
			}
		}
		return true
	})
	g.ForEachID(store.NoID, v.union, store.NoID, func(s, _, o store.ID) bool {
		if members, ok := g.ReadListID(o); ok && len(members) > 0 {
			t.unions[s] = members
			for _, m := range members {
				t.memberOfUnion[m] = append(t.memberOfUnion[m], s)
			}
		}
		return true
	})
	g.ForEachID(store.NoID, v.onProp, store.NoID, func(s, _, o store.ID) bool {
		r := restriction{Node: s, Prop: o,
			SomeFrom: g.FirstObjectID(s, v.svf),
			AllFrom:  g.FirstObjectID(s, v.avf),
			HasValue: g.FirstObjectID(s, v.hv),
		}
		if r.SomeFrom == store.NoID && r.AllFrom == store.NoID && r.HasValue == store.NoID {
			return true // cardinality or other unsupported restriction
		}
		t.restrictionsByProp[r.Prop] = append(t.restrictionsByProp[r.Prop], r)
		t.byNode[r.Node] = r
		if r.SomeFrom != store.NoID {
			t.svfByFiller[r.SomeFrom] = append(t.svfByFiller[r.SomeFrom], r)
		}
		return true
	})
	g.ForEachID(store.NoID, v.chain, store.NoID, func(s, _, o store.ID) bool {
		steps, ok := g.ReadListID(o)
		if !ok || len(steps) < 2 {
			return true
		}
		idx := len(t.chains)
		t.chains = append(t.chains, chain{Super: s, Steps: steps})
		t.chainsBySuper[s] = append(t.chainsBySuper[s], idx)
		seen := store.NewIDSet()
		for _, st := range steps {
			if seen.Add(st) {
				t.chainsByStep[st] = append(t.chainsByStep[st], idx)
			}
		}
		return true
	})
	return t
}

// ---- incremental maintenance ----

// updateExpr patches the expression table for one newly added structural
// triple and re-activates the affected expressions against the instance
// data already in the graph. This replaces the historical whole-graph
// rebuild: cost is proportional to the touched expressions (plus their
// activation scans), not to the graph.
func (r *Reasoner) updateExpr(t iTriple) {
	switch t.P {
	case r.v.inter:
		r.reparseIntersection(t.S)
	case r.v.union:
		r.reparseUnion(t.S)
	case r.v.onProp, r.v.svf, r.v.avf, r.v.hv:
		r.reparseRestriction(t.S)
	case r.v.chain:
		r.reparseChains(t.S)
	case r.v.first, r.v.rest:
		r.updateListNode(t.S)
	}
}

// updateListNode handles an rdf:first/rdf:rest triple: the subject is a
// list cell, and extending a list can complete (or alter) the member list
// of any expression whose head reaches this cell. Walk rest-edges backward
// to every ancestor cell and re-parse the expressions that use one of them
// as a list head.
func (r *Reasoner) updateListNode(node store.ID) {
	seen := store.NewIDSet()
	seen.Add(node)
	stack := []store.ID{node}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range r.g.SubjectsID(r.v.inter, n) {
			r.reparseIntersection(c)
		}
		for _, c := range r.g.SubjectsID(r.v.union, n) {
			r.reparseUnion(c)
		}
		for _, sup := range r.g.SubjectsID(r.v.chain, n) {
			r.reparseChains(sup)
		}
		for _, pred := range r.g.SubjectsID(r.v.rest, n) {
			if seen.Add(pred) {
				stack = append(stack, pred)
			}
		}
	}
}

func (r *Reasoner) reparseIntersection(c store.ID) {
	members := r.readExprList(c, r.v.inter)
	old := r.expr.intersections[c]
	if idSlicesEqual(old, members) {
		return
	}
	for _, m := range old {
		r.expr.memberOfIntersection[m] = removeID(r.expr.memberOfIntersection[m], c)
	}
	if len(members) == 0 {
		delete(r.expr.intersections, c)
		return
	}
	r.expr.intersections[c] = members
	for _, m := range members {
		r.expr.memberOfIntersection[m] = append(r.expr.memberOfIntersection[m], c)
	}
	r.activateIntersection(c, members)
}

func (r *Reasoner) reparseUnion(c store.ID) {
	members := r.readExprList(c, r.v.union)
	old := r.expr.unions[c]
	if idSlicesEqual(old, members) {
		return
	}
	for _, m := range old {
		r.expr.memberOfUnion[m] = removeID(r.expr.memberOfUnion[m], c)
	}
	if len(members) == 0 {
		delete(r.expr.unions, c)
		return
	}
	r.expr.unions[c] = members
	for _, m := range members {
		r.expr.memberOfUnion[m] = append(r.expr.memberOfUnion[m], c)
	}
	r.activateUnion(c, members)
}

// readExprList reads the member list of (c pred listHead), or nil when the
// list is absent, still incomplete, or empty.
func (r *Reasoner) readExprList(c, pred store.ID) []store.ID {
	head := r.g.FirstObjectID(c, pred)
	if head == store.NoID {
		return nil
	}
	members, ok := r.g.ReadListID(head)
	if !ok || len(members) == 0 {
		return nil
	}
	return members
}

func (r *Reasoner) reparseRestriction(node store.ID) {
	var nr restriction
	have := false
	if prop := r.g.FirstObjectID(node, r.v.onProp); prop != store.NoID {
		nr = restriction{Node: node, Prop: prop,
			SomeFrom: r.g.FirstObjectID(node, r.v.svf),
			AllFrom:  r.g.FirstObjectID(node, r.v.avf),
			HasValue: r.g.FirstObjectID(node, r.v.hv),
		}
		have = nr.SomeFrom != store.NoID || nr.AllFrom != store.NoID || nr.HasValue != store.NoID
	}
	old, hadOld := r.expr.byNode[node]
	if hadOld && have && old == nr {
		return
	}
	if hadOld {
		r.expr.restrictionsByProp[old.Prop] = removeRestrictionByNode(r.expr.restrictionsByProp[old.Prop], node)
		if old.SomeFrom != store.NoID {
			r.expr.svfByFiller[old.SomeFrom] = removeRestrictionByNode(r.expr.svfByFiller[old.SomeFrom], node)
		}
		delete(r.expr.byNode, node)
	}
	if !have {
		return
	}
	r.expr.restrictionsByProp[nr.Prop] = append(r.expr.restrictionsByProp[nr.Prop], nr)
	r.expr.byNode[node] = nr
	if nr.SomeFrom != store.NoID {
		r.expr.svfByFiller[nr.SomeFrom] = append(r.expr.svfByFiller[nr.SomeFrom], nr)
	}
	r.activateRestriction(nr)
}

// reparseChains re-reads every owl:propertyChainAxiom of one super-property,
// retiring the old entries — their indexes are removed from chainsByStep so
// instance-triple dispatch never scans dead chains (piecemeal list arrival
// reparses once per cell) — and activating the fresh ones. The chains slice
// keeps a nil-Steps placeholder per retired entry to preserve index
// stability; that growth is bounded by the number of chain-axiom reparses,
// not by instance traffic.
func (r *Reasoner) reparseChains(super store.ID) {
	for _, ci := range r.expr.chainsBySuper[super] {
		for _, st := range r.expr.chains[ci].Steps {
			r.expr.chainsByStep[st] = removeInt(r.expr.chainsByStep[st], ci)
		}
		r.expr.chains[ci].Steps = nil
	}
	r.expr.chainsBySuper[super] = nil
	for _, head := range r.g.ObjectsID(super, r.v.chain) {
		steps, ok := r.g.ReadListID(head)
		if !ok || len(steps) < 2 {
			continue
		}
		idx := len(r.expr.chains)
		r.expr.chains = append(r.expr.chains, chain{Super: super, Steps: steps})
		r.expr.chainsBySuper[super] = append(r.expr.chainsBySuper[super], idx)
		seen := store.NewIDSet()
		for _, st := range steps {
			if seen.Add(st) {
				r.expr.chainsByStep[st] = append(r.expr.chainsByStep[st], idx)
			}
		}
		r.activateChain(idx)
	}
}

// ---- expression activation ----
//
// A structural definition arriving AFTER instance data (in a delta, or
// inferred mid-run) must re-fire its rules against the instances already in
// the graph: the instance-side premises were processed before the
// expression existed, so nothing else will revisit them. Activation scans
// are bounded by the affected extents and every inference is idempotent.

// activateIntersection re-fires cls-int1/cls-int2 for one intersection.
func (r *Reasoner) activateIntersection(ic store.ID, members []store.ID) {
	// cls-int2: existing instances of the intersection gain each member.
	for _, x := range r.g.SubjectsID(r.v.typ, ic) {
		t := iTriple{x, r.v.typ, ic}
		for _, m := range members {
			r.infer("cls-int2", x, r.v.typ, m, t)
		}
	}
	// cls-int1: instances holding every member type gain the intersection.
	// Scan the member with the smallest extent and probe the rest.
	pivot := members[0]
	pivotN := r.g.CountID(store.NoID, r.v.typ, pivot)
	for _, m := range members[1:] {
		if n := r.g.CountID(store.NoID, r.v.typ, m); n < pivotN {
			pivot, pivotN = m, n
		}
	}
	for _, x := range r.g.SubjectsID(r.v.typ, pivot) {
		all := true
		for _, m := range members {
			if m != pivot && !r.g.HasID(x, r.v.typ, m) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		premises := make([]iTriple, 0, len(members))
		for _, m := range members {
			premises = append(premises, iTriple{x, r.v.typ, m})
		}
		r.infer("cls-int1", x, r.v.typ, ic, premises...)
	}
}

// activateUnion re-fires cls-uni for one union.
func (r *Reasoner) activateUnion(uc store.ID, members []store.ID) {
	for _, m := range members {
		for _, x := range r.g.SubjectsID(r.v.typ, m) {
			r.infer("cls-uni", x, r.v.typ, uc, iTriple{x, r.v.typ, m})
		}
	}
}

// activateRestriction re-fires cls-svf1/cls-hv1/cls-hv2/cls-avf for one
// freshly parsed restriction.
func (r *Reasoner) activateRestriction(rest restriction) {
	if rest.SomeFrom != store.NoID {
		r.g.ForEachID(store.NoID, rest.Prop, store.NoID, func(x, p, y store.ID) bool {
			if rest.SomeFrom == r.v.thing {
				r.infer("cls-svf1", x, r.v.typ, rest.Node, iTriple{x, p, y})
			} else if r.g.HasID(y, r.v.typ, rest.SomeFrom) {
				r.infer("cls-svf1", x, r.v.typ, rest.Node,
					iTriple{x, p, y}, iTriple{y, r.v.typ, rest.SomeFrom})
			}
			return true
		})
	}
	if rest.HasValue != store.NoID {
		for _, x := range r.g.SubjectsID(rest.Prop, rest.HasValue) {
			r.infer("cls-hv2", x, r.v.typ, rest.Node, iTriple{x, rest.Prop, rest.HasValue})
		}
		for _, x := range r.g.SubjectsID(r.v.typ, rest.Node) {
			r.infer("cls-hv1", x, rest.Prop, rest.HasValue, iTriple{x, r.v.typ, rest.Node})
		}
	}
	if rest.AllFrom != store.NoID {
		for _, x := range r.g.SubjectsID(r.v.typ, rest.Node) {
			t := iTriple{x, r.v.typ, rest.Node}
			r.g.ForEachID(x, rest.Prop, store.NoID, func(s, p, o store.ID) bool {
				r.infer("cls-avf", o, r.v.typ, rest.AllFrom, t, iTriple{s, p, o})
				return true
			})
		}
	}
}

// activateChain re-fires prp-spo2 for one chain against the existing
// instance data. Every full instantiation of the chain uses one triple of
// every step, so scanning the step with the smallest extent and expanding
// outward from each of its triples covers all instantiations.
func (r *Reasoner) activateChain(ci int) {
	c := r.expr.chains[ci]
	best := c.Steps[0]
	bestN := r.g.CountID(store.NoID, best, store.NoID)
	for _, st := range c.Steps[1:] {
		if n := r.g.CountID(store.NoID, st, store.NoID); n < bestN {
			best, bestN = st, n
		}
	}
	r.g.ForEachID(store.NoID, best, store.NoID, func(s, p, o store.ID) bool {
		r.applyChain(c, iTriple{s, p, o})
		return true
	})
}

// ---- small slice helpers ----

func idSlicesEqual(a, b []store.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func removeID(list []store.ID, id store.ID) []store.ID {
	out := list[:0]
	for _, x := range list {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

func removeInt(list []int, v int) []int {
	out := list[:0]
	for _, x := range list {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func removeRestrictionByNode(list []restriction, node store.ID) []restriction {
	out := list[:0]
	for _, x := range list {
		if x.Node != node {
			out = append(out, x)
		}
	}
	return out
}
