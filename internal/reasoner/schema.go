// Package reasoner implements a forward-chaining materializer for the OWL 2
// RL fragment that the Food Explanation Ontology (FEO) uses. It substitutes
// for the Pellet reasoner the paper runs before exporting inferred axioms:
// after Materialize, the graph contains every triple Listings 1-3 of the
// paper query for — transitive characteristic closures, inverse-property
// completions, sub-property inheritance, and equivalent-class membership
// (including intersection and restriction classes such as eo:Fact/eo:Foil).
//
// Two evaluation strategies are provided: semi-naive (delta-driven, the
// default) and naive (full re-evaluation each round, kept for the ablation
// benchmark that reproduces the paper's "a reasoner known to handle
// individuals more efficiently" motivation for choosing Pellet).
package reasoner

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

// restriction describes an owl:Restriction node after structural parsing.
// Exactly one of SomeFrom, AllFrom, HasValue is set.
type restriction struct {
	Node     rdf.Term // the restriction class node (usually a blank node)
	Prop     rdf.Term // owl:onProperty
	SomeFrom rdf.Term // owl:someValuesFrom filler, or zero
	AllFrom  rdf.Term // owl:allValuesFrom filler, or zero
	HasValue rdf.Term // owl:hasValue value, or zero
}

// exprTable indexes OWL class expressions (intersections, unions,
// restrictions) for O(1) lookup during rule application. It is rebuilt
// whenever structural vocabulary triples change, which for ontology +
// instance loads happens once.
type exprTable struct {
	// intersections maps a class to its owl:intersectionOf member list.
	intersections map[rdf.Term][]rdf.Term
	// memberOfIntersection maps a member class to the intersection classes
	// that contain it.
	memberOfIntersection map[rdf.Term][]rdf.Term
	unions               map[rdf.Term][]rdf.Term
	memberOfUnion        map[rdf.Term][]rdf.Term
	// restrictionsByProp maps a property to the restrictions on it.
	restrictionsByProp map[rdf.Term][]restriction
	// byNode maps a restriction node to its parsed form.
	byNode map[rdf.Term]restriction
	// svfByFiller maps a someValuesFrom filler class to restrictions using it.
	svfByFiller map[rdf.Term][]restriction
	// chains holds owl:propertyChainAxiom definitions: super-property and
	// the chain of step properties.
	chains []chain
	// chainsByStep indexes chains by each property appearing in them.
	chainsByStep map[rdf.Term][]int
}

// chain is one owl:propertyChainAxiom: steps[0] ∘ steps[1] ∘ … ⊑ super.
type chain struct {
	Super rdf.Term
	Steps []rdf.Term
}

// structuralPredicates are the predicates whose presence requires an
// expression-table rebuild when they change.
var structuralPredicates = map[string]bool{
	rdf.OWLIntersectionOf:     true,
	rdf.OWLUnionOf:            true,
	rdf.OWLOnProperty:         true,
	rdf.OWLSomeValuesFrom:     true,
	rdf.OWLAllValuesFrom:      true,
	rdf.OWLHasValue:           true,
	rdf.OWLPropertyChainAxiom: true,
	rdf.RDFFirst:              true,
	rdf.RDFRest:               true,
}

func buildExprTable(g *store.Graph) *exprTable {
	t := &exprTable{
		intersections:        make(map[rdf.Term][]rdf.Term),
		memberOfIntersection: make(map[rdf.Term][]rdf.Term),
		unions:               make(map[rdf.Term][]rdf.Term),
		memberOfUnion:        make(map[rdf.Term][]rdf.Term),
		restrictionsByProp:   make(map[rdf.Term][]restriction),
		byNode:               make(map[rdf.Term]restriction),
		svfByFiller:          make(map[rdf.Term][]restriction),
		chainsByStep:         make(map[rdf.Term][]int),
	}
	interIRI := rdf.NewIRI(rdf.OWLIntersectionOf)
	unionIRI := rdf.NewIRI(rdf.OWLUnionOf)
	onPropIRI := rdf.NewIRI(rdf.OWLOnProperty)
	svfIRI := rdf.NewIRI(rdf.OWLSomeValuesFrom)
	avfIRI := rdf.NewIRI(rdf.OWLAllValuesFrom)
	hvIRI := rdf.NewIRI(rdf.OWLHasValue)

	g.ForEach(store.Wildcard, interIRI, store.Wildcard, func(tr rdf.Triple) bool {
		if members, ok := g.ReadList(tr.O); ok && len(members) > 0 {
			t.intersections[tr.S] = members
			for _, m := range members {
				t.memberOfIntersection[m] = append(t.memberOfIntersection[m], tr.S)
			}
		}
		return true
	})
	g.ForEach(store.Wildcard, unionIRI, store.Wildcard, func(tr rdf.Triple) bool {
		if members, ok := g.ReadList(tr.O); ok && len(members) > 0 {
			t.unions[tr.S] = members
			for _, m := range members {
				t.memberOfUnion[m] = append(t.memberOfUnion[m], tr.S)
			}
		}
		return true
	})
	g.ForEach(store.Wildcard, onPropIRI, store.Wildcard, func(tr rdf.Triple) bool {
		r := restriction{Node: tr.S, Prop: tr.O}
		if f := g.FirstObject(tr.S, svfIRI); f.IsValid() {
			r.SomeFrom = f
		}
		if f := g.FirstObject(tr.S, avfIRI); f.IsValid() {
			r.AllFrom = f
		}
		if v := g.FirstObject(tr.S, hvIRI); v.IsValid() {
			r.HasValue = v
		}
		if !r.SomeFrom.IsValid() && !r.AllFrom.IsValid() && !r.HasValue.IsValid() {
			return true // cardinality or other unsupported restriction
		}
		t.restrictionsByProp[r.Prop] = append(t.restrictionsByProp[r.Prop], r)
		t.byNode[r.Node] = r
		if r.SomeFrom.IsValid() {
			t.svfByFiller[r.SomeFrom] = append(t.svfByFiller[r.SomeFrom], r)
		}
		return true
	})
	chainIRI := rdf.NewIRI(rdf.OWLPropertyChainAxiom)
	g.ForEach(store.Wildcard, chainIRI, store.Wildcard, func(tr rdf.Triple) bool {
		steps, ok := g.ReadList(tr.O)
		if !ok || len(steps) < 2 {
			return true
		}
		idx := len(t.chains)
		t.chains = append(t.chains, chain{Super: tr.S, Steps: steps})
		seen := make(map[rdf.Term]bool)
		for _, s := range steps {
			if !seen[s] {
				seen[s] = true
				t.chainsByStep[s] = append(t.chainsByStep[s], idx)
			}
		}
		return true
	})
	return t
}
