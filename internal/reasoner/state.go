package reasoner

import (
	"sort"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Closure state export/restore and the derivation journal.
//
// The durability layer persists a Reasoner's carried closure state next to
// the graph it describes, so a process restart resumes incremental
// materialization exactly where the previous process stopped instead of
// paying a full re-run: ClosureState captures the cumulative inferred count
// and the derivation trace, RestoreClosure rebinds them to a freshly loaded
// graph (rebuilding the cheap derived structures — vocabulary, expression
// table — from the graph itself), and the journal streams each commit's
// newly recorded derivations so the write-ahead log can carry derivation
// deltas without re-serializing the whole trace.

// TracedDerivation is one entry of the serializable derivation trace: the
// inferred triple together with the rule and premises that first produced
// it. It is the external, slice-form counterpart of the internal
// conclusion→Derivation map.
type TracedDerivation struct {
	Conclusion rdf.Triple
	Rule       string
	Premises   []rdf.Triple
}

// ClosureState is the portion of a Reasoner's carried state that cannot be
// recomputed from the materialized graph alone: the asserted/inferred
// split and the derivation trace. Everything else the incremental contract
// needs (vocabulary IDs, the expression table, the closure version) is
// derived from the graph at restore time.
type ClosureState struct {
	// TotalInferred is the cumulative number of triples the reasoner
	// inferred into the current graph (Stats.TotalInferred).
	TotalInferred int
	// Derivations is the full derivation trace, sorted by conclusion for
	// deterministic serialization. Empty when tracing is off.
	Derivations []TracedDerivation
}

// TotalInferred returns the cumulative number of triples this Reasoner has
// inferred into the current graph.
func (r *Reasoner) TotalInferred() int { return r.totalInferred }

// LastRunInferred returns the Inferred count of the most recent
// materialization run — the per-run delta, zero for a run that found the
// closure already complete and zero before any run. Serve-time dashboards
// watch it to spot unexpectedly large incremental closures.
func (r *Reasoner) LastRunInferred() int { return r.stats.Inferred }

// ClosureState exports the reasoner's carried closure state for
// persistence. The derivation slice is sorted by conclusion so repeated
// exports of the same state are byte-identical once serialized.
func (r *Reasoner) ClosureState() ClosureState {
	st := ClosureState{TotalInferred: r.totalInferred}
	if len(r.derivations) > 0 {
		st.Derivations = make([]TracedDerivation, 0, len(r.derivations))
		for concl, d := range r.derivations {
			st.Derivations = append(st.Derivations, TracedDerivation{
				Conclusion: concl, Rule: d.Rule, Premises: d.Premises,
			})
		}
		sort.Slice(st.Derivations, func(i, j int) bool {
			return compareTriples(st.Derivations[i].Conclusion, st.Derivations[j].Conclusion) < 0
		})
	}
	return st
}

// RestoreClosure points the Reasoner at g — a graph whose OWL RL closure is
// already complete (a reloaded snapshot of a materialized graph) — and
// installs the persisted closure state st as if this Reasoner had computed
// it. The expression table and vocabulary are rebuilt from the graph; the
// closure version pins to the graph's current Version. Afterwards the
// incremental contract holds: MaterializeDelta/MaterializeChanges extend
// the closure from deltas, Derivation/Proof answer from the restored trace.
func (r *Reasoner) RestoreClosure(g *store.Graph, st ClosureState) {
	r.bind(g)
	r.expr = buildExprTable(g, r.v)
	r.pendingExpr = nil
	r.queue = nil
	r.totalInferred = st.TotalInferred
	if r.opts.TraceDerivations {
		r.derivations = make(map[rdf.Triple]Derivation, len(st.Derivations))
		for _, d := range st.Derivations {
			r.derivations[d.Conclusion] = Derivation{Rule: d.Rule, Premises: d.Premises}
		}
	}
	r.lastVersion = g.Version()
	r.prepared = true
}

// StartDerivationJournal begins journaling: from now on every newly
// recorded derivation is also appended, in inference order, to an internal
// journal that JournalSince reads. Requires TraceDerivations; without it
// the journal stays empty. Idempotent.
func (r *Reasoner) StartDerivationJournal() { r.journaling = true }

// JournalLen returns the current journal position, for use as a later
// JournalSince mark.
func (r *Reasoner) JournalLen() int { return len(r.journal) }

// JournalSince returns the derivations recorded at journal positions
// [mark, len): the derivation delta of the span since JournalLen returned
// mark. Entries whose conclusion has since left the trace (Graph.Clear
// resets it) are skipped.
func (r *Reasoner) JournalSince(mark int) []TracedDerivation {
	if mark < 0 {
		mark = 0
	}
	if mark >= len(r.journal) {
		return nil
	}
	out := make([]TracedDerivation, 0, len(r.journal)-mark)
	for _, concl := range r.journal[mark:] {
		if d, ok := r.derivations[concl]; ok {
			out = append(out, TracedDerivation{Conclusion: concl, Rule: d.Rule, Premises: d.Premises})
		}
	}
	return out
}

// TrimJournal discards the journal's contents. Call after persisting a full
// ClosureState (which subsumes every journaled delta); earlier marks become
// invalid.
func (r *Reasoner) TrimJournal() { r.journal = r.journal[:0] }
