package reasoner

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Inconsistency reports one violated OWL constraint found by Validate.
type Inconsistency struct {
	// Rule is the OWL RL false-rule name (cax-dw, eq-diff1, ...).
	Rule string
	// Message is a human-readable description.
	Message string
	// Triples are the conflicting assertions.
	Triples []rdf.Triple
}

func (i Inconsistency) String() string {
	return fmt.Sprintf("[%s] %s", i.Rule, i.Message)
}

// Validate checks the (ideally already materialized) graph against the OWL
// RL inconsistency rules Pellet would flag: disjoint-class membership,
// sameAs/differentFrom clashes, owl:Nothing membership, asymmetric and
// irreflexive property violations, complementOf membership, and violated
// negative property assertions. It returns every violation found.
//
//feo:emit
func Validate(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	out = append(out, checkDisjointClasses(g)...)
	out = append(out, checkSameDifferent(g)...)
	out = append(out, checkNothing(g)...)
	out = append(out, checkAsymmetric(g)...)
	out = append(out, checkIrreflexive(g)...)
	out = append(out, checkComplement(g)...)
	out = append(out, checkNegativeAssertions(g)...)
	// The checks enumerate index maps, so their finding order is arbitrary;
	// sort so Validate's report is stable across runs.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// checkDisjointClasses implements cax-dw: no individual may belong to two
// disjoint classes.
func checkDisjointClasses(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	disjointIRI := rdf.NewIRI(rdf.OWLDisjointWith)
	g.ForEach(store.Wildcard, disjointIRI, store.Wildcard, func(ax rdf.Triple) bool {
		c1, c2 := ax.S, ax.O
		for _, x := range g.InstancesOf(c1) {
			if g.IsA(x, c2) {
				out = append(out, Inconsistency{
					Rule: "cax-dw",
					Message: fmt.Sprintf("%s belongs to disjoint classes %s and %s",
						x, c1, c2),
					Triples: []rdf.Triple{
						{S: x, P: rdf.TypeIRI, O: c1},
						{S: x, P: rdf.TypeIRI, O: c2},
						ax,
					},
				})
			}
		}
		return true
	})
	return out
}

// checkSameDifferent implements eq-diff1: owl:sameAs and owl:differentFrom
// may not hold for the same pair.
func checkSameDifferent(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	diffIRI := rdf.NewIRI(rdf.OWLDifferentFrom)
	g.ForEach(store.Wildcard, diffIRI, store.Wildcard, func(ax rdf.Triple) bool {
		if g.Has(ax.S, rdf.SameAsIRI, ax.O) || g.Has(ax.O, rdf.SameAsIRI, ax.S) || ax.S == ax.O {
			out = append(out, Inconsistency{
				Rule:    "eq-diff1",
				Message: fmt.Sprintf("%s is both sameAs and differentFrom %s", ax.S, ax.O),
				Triples: []rdf.Triple{ax, {S: ax.S, P: rdf.SameAsIRI, O: ax.O}},
			})
		}
		return true
	})
	return out
}

// checkNothing implements cls-nothing2: owl:Nothing has no instances.
func checkNothing(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	for _, x := range g.InstancesOf(rdf.NothingIRI) {
		out = append(out, Inconsistency{
			Rule:    "cls-nothing2",
			Message: fmt.Sprintf("%s is an instance of owl:Nothing", x),
			Triples: []rdf.Triple{{S: x, P: rdf.TypeIRI, O: rdf.NothingIRI}},
		})
	}
	return out
}

// checkAsymmetric implements prp-asyp: an asymmetric property may not hold
// in both directions.
func checkAsymmetric(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	asymIRI := rdf.NewIRI(rdf.OWLAsymmetricProperty)
	for _, p := range g.Subjects(rdf.TypeIRI, asymIRI) {
		g.ForEach(store.Wildcard, p, store.Wildcard, func(t rdf.Triple) bool {
			if t.O.IsResource() && g.Has(t.O, p, t.S) {
				// Report each unordered pair once.
				if rdf.Compare(t.S, t.O) <= 0 {
					out = append(out, Inconsistency{
						Rule:    "prp-asyp",
						Message: fmt.Sprintf("asymmetric property %s holds both ways between %s and %s", p, t.S, t.O),
						Triples: []rdf.Triple{t, {S: t.O, P: p, O: t.S}},
					})
				}
			}
			return true
		})
	}
	return out
}

// checkIrreflexive implements prp-irp: an irreflexive property may not
// relate a node to itself.
func checkIrreflexive(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	irrIRI := rdf.NewIRI(rdf.OWLIrreflexiveProperty)
	for _, p := range g.Subjects(rdf.TypeIRI, irrIRI) {
		g.ForEach(store.Wildcard, p, store.Wildcard, func(t rdf.Triple) bool {
			if t.S == t.O {
				out = append(out, Inconsistency{
					Rule:    "prp-irp",
					Message: fmt.Sprintf("irreflexive property %s relates %s to itself", p, t.S),
					Triples: []rdf.Triple{t},
				})
			}
			return true
		})
	}
	return out
}

// checkComplement implements cls-com: no individual may belong to a class
// and its complement.
func checkComplement(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	compIRI := rdf.NewIRI(rdf.OWLComplementOf)
	g.ForEach(store.Wildcard, compIRI, store.Wildcard, func(ax rdf.Triple) bool {
		for _, x := range g.InstancesOf(ax.S) {
			if g.IsA(x, ax.O) {
				out = append(out, Inconsistency{
					Rule:    "cls-com",
					Message: fmt.Sprintf("%s belongs to %s and its complement %s", x, ax.O, ax.S),
					Triples: []rdf.Triple{
						{S: x, P: rdf.TypeIRI, O: ax.S},
						{S: x, P: rdf.TypeIRI, O: ax.O},
						ax,
					},
				})
			}
		}
		return true
	})
	return out
}

// checkNegativeAssertions implements prp-npa1: a triple asserted by the
// graph may not be denied by an owl:NegativePropertyAssertion.
func checkNegativeAssertions(g *store.Graph) []Inconsistency {
	var out []Inconsistency
	npaIRI := rdf.NewIRI(rdf.OWLNegativePropertyAssert)
	srcIRI := rdf.NewIRI(rdf.OWLSourceIndividual)
	propIRI := rdf.NewIRI(rdf.OWLAssertionProperty)
	tgtIRI := rdf.NewIRI(rdf.OWLTargetIndividual)
	for _, npa := range g.InstancesOf(npaIRI) {
		src := g.FirstObject(npa, srcIRI)
		prop := g.FirstObject(npa, propIRI)
		tgt := g.FirstObject(npa, tgtIRI)
		if !src.IsValid() || !prop.IsValid() || !tgt.IsValid() {
			continue
		}
		if g.Has(src, prop, tgt) {
			out = append(out, Inconsistency{
				Rule:    "prp-npa1",
				Message: fmt.Sprintf("negative assertion violated: %s %s %s", src, prop, tgt),
				Triples: []rdf.Triple{{S: src, P: prop, O: tgt}},
			})
		}
	}
	return out
}
