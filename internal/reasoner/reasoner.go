package reasoner

import (
	"fmt"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Options configures a materialization run.
type Options struct {
	// Naive selects full re-evaluation each round instead of delta-driven
	// semi-naive evaluation. Kept for the ablation benchmark; results are
	// identical, only slower.
	Naive bool
	// MaxRounds bounds naive evaluation rounds (and acts as a safety valve
	// for semi-naive). Zero means the default of 1000.
	MaxRounds int
	// TraceDerivations records, for every inferred triple, the rule and
	// premises that first produced it. Required for trace-based
	// explanations; costs one map entry per inferred triple.
	TraceDerivations bool
	// IncludeReflexive additionally materializes the reflexive
	// rdfs:subClassOf/subPropertyOf triples of OWL RL rule scm-cls/scm-op.
	// The paper's SPARQL listings assume Protégé-style inferred exports,
	// which omit reflexive axioms, so the default is false.
	IncludeReflexive bool
}

// Derivation records how an inferred triple was first derived.
type Derivation struct {
	Rule     string       // OWL RL rule name, e.g. "cax-sco"
	Premises []rdf.Triple // the triples that matched the rule body
}

// Stats summarizes a materialization run.
type Stats struct {
	Asserted    int // triples present before materialization
	Inferred    int // new triples added
	Rounds      int // naive rounds, or delta batches processed
	RuleFirings map[string]int
	Duration    time.Duration
}

// String renders the stats compactly for CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("asserted=%d inferred=%d rounds=%d duration=%s",
		s.Asserted, s.Inferred, s.Rounds, s.Duration)
}

// iTriple is a dictionary-encoded triple. The whole rule engine — queue,
// joins, premise bookkeeping — runs on these 12-byte values; rdf.Triple is
// only materialized at the public API boundary (Derivation, Proof) and when
// tracing is on.
type iTriple struct {
	S, P, O store.ID
}

// vocab holds the interned IDs of every RDF/RDFS/OWL term the rule bodies
// dispatch on. Interning happens once per Materialize; afterwards predicate
// dispatch and joins compare uint32s instead of hashing term structs.
type vocab struct {
	typ, sco, spo, dom, rng, inv, eqc, eqp, same store.ID
	trans, sym, funcP, invFunc, thing, class     store.ID
	inter, union, onProp, svf, avf, hv, chain    store.ID
	first, rest                                  store.ID
}

func internVocab(g *store.Graph) vocab {
	return vocab{
		typ:     g.InternTerm(rdf.TypeIRI),
		sco:     g.InternTerm(rdf.SubClassOfIRI),
		spo:     g.InternTerm(rdf.SubPropertyOfIRI),
		dom:     g.InternTerm(rdf.DomainIRI),
		rng:     g.InternTerm(rdf.RangeIRI),
		inv:     g.InternTerm(rdf.InverseOfIRI),
		eqc:     g.InternTerm(rdf.EquivClassIRI),
		eqp:     g.InternTerm(rdf.EquivPropIRI),
		same:    g.InternTerm(rdf.SameAsIRI),
		trans:   g.InternTerm(rdf.NewIRI(rdf.OWLTransitiveProperty)),
		sym:     g.InternTerm(rdf.NewIRI(rdf.OWLSymmetricProperty)),
		funcP:   g.InternTerm(rdf.NewIRI(rdf.OWLFunctionalProperty)),
		invFunc: g.InternTerm(rdf.NewIRI(rdf.OWLInverseFunctional)),
		thing:   g.InternTerm(rdf.ThingIRI),
		class:   g.InternTerm(rdf.ClassIRI),
		inter:   g.InternTerm(rdf.NewIRI(rdf.OWLIntersectionOf)),
		union:   g.InternTerm(rdf.NewIRI(rdf.OWLUnionOf)),
		onProp:  g.InternTerm(rdf.NewIRI(rdf.OWLOnProperty)),
		svf:     g.InternTerm(rdf.NewIRI(rdf.OWLSomeValuesFrom)),
		avf:     g.InternTerm(rdf.NewIRI(rdf.OWLAllValuesFrom)),
		hv:      g.InternTerm(rdf.NewIRI(rdf.OWLHasValue)),
		chain:   g.InternTerm(rdf.NewIRI(rdf.OWLPropertyChainAxiom)),
		first:   g.InternTerm(rdf.FirstIRI),
		rest:    g.InternTerm(rdf.RestIRI),
	}
}

// structuralIDs returns the set of predicate IDs whose presence requires an
// expression-table rebuild when they change, as a bitmap probed once per
// inferred triple.
func (v vocab) structuralIDs() *store.IDSet {
	s := store.NewIDSet()
	for _, id := range []store.ID{
		v.inter, v.union, v.onProp, v.svf, v.avf, v.hv, v.chain, v.first, v.rest,
	} {
		s.Add(id)
	}
	return s
}

// Reasoner materializes OWL 2 RL consequences into a graph.
type Reasoner struct {
	opts      Options
	g         *store.Graph
	v         vocab
	structIDs *store.IDSet
	expr      *exprTable
	queue     []iTriple
	stats     Stats
	// derivations maps each inferred triple to its first derivation.
	derivations map[rdf.Triple]Derivation
	exprDirty   bool
}

// New returns a Reasoner with the given options.
func New(opts Options) *Reasoner {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 1000
	}
	return &Reasoner{opts: opts}
}

// Materialize computes the OWL RL closure of g in place and returns run
// statistics. It can be called again after further assertions; the closure
// is recomputed incrementally from the full graph.
func (r *Reasoner) Materialize(g *store.Graph) Stats {
	start := time.Now()
	r.g = g
	r.v = internVocab(g)
	r.structIDs = r.v.structuralIDs()
	r.stats = Stats{Asserted: g.Len(), RuleFirings: make(map[string]int)}
	if r.opts.TraceDerivations && r.derivations == nil {
		r.derivations = make(map[rdf.Triple]Derivation)
	}
	r.expr = buildExprTable(g, r.v)
	if r.opts.Naive {
		r.runNaive()
	} else {
		r.runSemiNaive()
	}
	r.stats.Inferred = g.Len() - r.stats.Asserted
	r.stats.Duration = time.Since(start)
	return r.stats
}

// decode materializes an ID triple at the public API / tracing boundary.
func (r *Reasoner) decode(t iTriple) rdf.Triple {
	return rdf.Triple{S: r.g.TermOf(t.S), P: r.g.TermOf(t.P), O: r.g.TermOf(t.O)}
}

// snapshot returns every triple currently in the graph as ID triples, in
// index order.
func (r *Reasoner) snapshot() []iTriple {
	out := make([]iTriple, 0, r.g.Len())
	r.g.ForEachID(store.NoID, store.NoID, store.NoID, func(s, p, o store.ID) bool {
		out = append(out, iTriple{s, p, o})
		return true
	})
	return out
}

// Derivation returns how t was inferred. ok is false for asserted triples,
// for unknown triples, or when tracing was disabled.
func (r *Reasoner) Derivation(t rdf.Triple) (Derivation, bool) {
	d, ok := r.derivations[t]
	return d, ok
}

// ProofTree returns the derivation of t and, recursively, of its premises,
// flattened in dependency order (premises before conclusions). Asserted
// premises appear with rule "asserted".
type ProofStep struct {
	Conclusion rdf.Triple
	Rule       string
	Premises   []rdf.Triple
}

// Proof reconstructs the full derivation chain for t. The result is empty
// when tracing was disabled or t is unknown.
func (r *Reasoner) Proof(t rdf.Triple) []ProofStep {
	var steps []ProofStep
	seen := make(map[rdf.Triple]bool)
	var walk func(rdf.Triple)
	walk = func(cur rdf.Triple) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		d, ok := r.derivations[cur]
		if !ok {
			if r.g != nil && r.g.Has(cur.S, cur.P, cur.O) {
				steps = append(steps, ProofStep{Conclusion: cur, Rule: "asserted"})
			}
			return
		}
		for _, p := range d.Premises {
			walk(p)
		}
		steps = append(steps, ProofStep{Conclusion: cur, Rule: d.Rule, Premises: d.Premises})
	}
	walk(t)
	return steps
}

// runSemiNaive seeds the queue with every asserted triple and then processes
// deltas: each new triple is matched against every rule position it could
// fill, joining other premises against the current graph. Each inferred
// triple enters the queue exactly once.
func (r *Reasoner) runSemiNaive() {
	r.queue = r.snapshot()
	r.seedAxiomRules()
	processed := 0
	for len(r.queue) > 0 {
		t := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		if r.exprDirty {
			r.expr = buildExprTable(r.g, r.v)
			r.exprDirty = false
		}
		r.applyDelta(t)
		processed++
		if processed > r.opts.MaxRounds*1_000_000 {
			break // safety valve; unreachable in practice
		}
	}
	r.stats.Rounds = processed
}

// runNaive repeatedly applies every rule to every triple until a full round
// adds nothing. Kept for the A1 ablation benchmark.
func (r *Reasoner) runNaive() {
	for round := 0; round < r.opts.MaxRounds; round++ {
		r.stats.Rounds = round + 1
		before := r.g.Len()
		r.expr = buildExprTable(r.g, r.v)
		r.exprDirty = false
		r.seedAxiomRules()
		for _, t := range r.snapshot() {
			r.applyDelta(t)
		}
		if r.g.Len() == before {
			return
		}
	}
}

// infer adds a conclusion triple; when new, it is queued for further delta
// processing and its derivation is recorded. All arguments are interned IDs.
func (r *Reasoner) infer(rule string, s, p, o store.ID, premises ...iTriple) {
	if !r.g.IsResourceID(s) || r.g.KindOf(p) != rdf.KindIRI {
		return
	}
	if !r.g.AddID(s, p, o) {
		return // already present (or invalid)
	}
	t := iTriple{s, p, o}
	r.stats.RuleFirings[rule]++
	if !r.opts.Naive {
		r.queue = append(r.queue, t)
	}
	if r.opts.TraceDerivations {
		prem := make([]rdf.Triple, len(premises))
		for i, pt := range premises {
			prem[i] = r.decode(pt)
		}
		r.derivations[r.decode(t)] = Derivation{Rule: rule, Premises: prem}
	}
	if r.structIDs.Contains(p) {
		r.exprDirty = true
	}
}

// seedAxiomRules applies rules with no instance premises (scm-cls style).
func (r *Reasoner) seedAxiomRules() {
	if !r.opts.IncludeReflexive {
		return
	}
	r.g.ForEachID(store.NoID, r.v.typ, r.v.class, func(s, p, o store.ID) bool {
		t := iTriple{s, p, o}
		r.infer("scm-cls", s, r.v.sco, s, t)
		r.infer("scm-cls", s, r.v.sco, r.v.thing, t)
		return true
	})
}
