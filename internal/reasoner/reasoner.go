package reasoner

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Options configures a materialization run.
type Options struct {
	// Naive selects full re-evaluation each round instead of delta-driven
	// semi-naive evaluation. Kept for the ablation benchmark; results are
	// identical, only slower. A naive Reasoner never takes the incremental
	// path: MaterializeDelta/MaterializeChanges fall back to full runs.
	Naive bool
	// MaxRounds bounds naive evaluation rounds (and acts as a safety valve
	// for semi-naive). Zero means the default of 1000.
	MaxRounds int
	// TraceDerivations records, for every inferred triple, the rule and
	// premises that first produced it. Required for trace-based
	// explanations; costs one map entry per inferred triple.
	TraceDerivations bool
	// IncludeReflexive additionally materializes the reflexive
	// rdfs:subClassOf/subPropertyOf triples of OWL RL rule scm-cls/scm-op.
	// The paper's SPARQL listings assume Protégé-style inferred exports,
	// which omit reflexive axioms, so the default is false.
	IncludeReflexive bool
}

// Derivation records how an inferred triple was first derived.
type Derivation struct {
	Rule     string       // OWL RL rule name, e.g. "cax-sco"
	Premises []rdf.Triple // the triples that matched the rule body
}

// Stats summarizes a materialization run.
type Stats struct {
	// Asserted counts the caller-asserted triples in the graph at the start
	// of the run: the graph size minus every triple this Reasoner inferred
	// in earlier runs on the same graph. (A fresh Reasoner pointed at an
	// already-materialized graph cannot tell inherited inferences from
	// assertions and counts them as asserted.)
	Asserted int
	// Inferred counts the new triples THIS run added — a per-run delta,
	// zero for a run that found the closure already complete.
	Inferred int
	// TotalInferred counts the triples this Reasoner inferred across all
	// its runs on the current graph, cumulative.
	TotalInferred int
	// Delta reports whether the run took the incremental path (seeded by a
	// mutation delta) instead of re-running over the whole graph.
	Delta       bool
	Rounds      int // triples processed (semi-naive) or naive rounds
	RuleFirings map[string]int
	Duration    time.Duration
}

// String renders the stats compactly for CLI output.
func (s Stats) String() string {
	mode := "full"
	if s.Delta {
		mode = "delta"
	}
	return fmt.Sprintf("asserted=%d inferred=%d total-inferred=%d mode=%s rounds=%d duration=%s",
		s.Asserted, s.Inferred, s.TotalInferred, mode, s.Rounds, s.Duration)
}

// iTriple is a dictionary-encoded triple. The whole rule engine — queue,
// joins, premise bookkeeping — runs on these 12-byte values; rdf.Triple is
// only materialized at the public API boundary (Derivation, Proof) and when
// tracing is on.
type iTriple struct {
	S, P, O store.ID
}

// vocab holds the interned IDs of every RDF/RDFS/OWL term the rule bodies
// dispatch on. Interning happens once per full Materialize; afterwards
// predicate dispatch and joins compare uint32s instead of hashing term
// structs.
type vocab struct {
	typ, sco, spo, dom, rng, inv, eqc, eqp, same store.ID
	trans, sym, funcP, invFunc, thing, class     store.ID
	inter, union, onProp, svf, avf, hv, chain    store.ID
	first, rest                                  store.ID
}

func internVocab(g *store.Graph) vocab {
	return vocab{
		typ:     g.InternTerm(rdf.TypeIRI),
		sco:     g.InternTerm(rdf.SubClassOfIRI),
		spo:     g.InternTerm(rdf.SubPropertyOfIRI),
		dom:     g.InternTerm(rdf.DomainIRI),
		rng:     g.InternTerm(rdf.RangeIRI),
		inv:     g.InternTerm(rdf.InverseOfIRI),
		eqc:     g.InternTerm(rdf.EquivClassIRI),
		eqp:     g.InternTerm(rdf.EquivPropIRI),
		same:    g.InternTerm(rdf.SameAsIRI),
		trans:   g.InternTerm(rdf.NewIRI(rdf.OWLTransitiveProperty)),
		sym:     g.InternTerm(rdf.NewIRI(rdf.OWLSymmetricProperty)),
		funcP:   g.InternTerm(rdf.NewIRI(rdf.OWLFunctionalProperty)),
		invFunc: g.InternTerm(rdf.NewIRI(rdf.OWLInverseFunctional)),
		thing:   g.InternTerm(rdf.ThingIRI),
		class:   g.InternTerm(rdf.ClassIRI),
		inter:   g.InternTerm(rdf.NewIRI(rdf.OWLIntersectionOf)),
		union:   g.InternTerm(rdf.NewIRI(rdf.OWLUnionOf)),
		onProp:  g.InternTerm(rdf.NewIRI(rdf.OWLOnProperty)),
		svf:     g.InternTerm(rdf.NewIRI(rdf.OWLSomeValuesFrom)),
		avf:     g.InternTerm(rdf.NewIRI(rdf.OWLAllValuesFrom)),
		hv:      g.InternTerm(rdf.NewIRI(rdf.OWLHasValue)),
		chain:   g.InternTerm(rdf.NewIRI(rdf.OWLPropertyChainAxiom)),
		first:   g.InternTerm(rdf.FirstIRI),
		rest:    g.InternTerm(rdf.RestIRI),
	}
}

// structuralIDs returns the set of predicate IDs whose triples feed the
// expression table (see schema.go), as a bitmap probed once per processed
// triple. A delta or inference touching one of them triggers an incremental
// expression-table update, never a whole-graph rebuild.
func (v vocab) structuralIDs() *store.IDSet {
	s := store.NewIDSet()
	for _, id := range []store.ID{
		v.inter, v.union, v.onProp, v.svf, v.avf, v.hv, v.chain, v.first, v.rest,
	} {
		s.Add(id)
	}
	return s
}

// Reasoner materializes OWL 2 RL consequences into a graph.
//
// # Incremental contract
//
// A Reasoner carries its closure state — interned vocabulary, the parsed
// expression table, cumulative statistics, and (with TraceDerivations) the
// derivation map — across calls on the same graph. After a completed run,
// MaterializeDelta/MaterializeChanges extend the closure with only the
// consequences of newly added triples: the semi-naive queue is seeded with
// the delta instead of the whole graph, and the expression table is patched
// entry-by-entry for structural triples (owl:intersectionOf, owl:unionOf,
// restrictions, property chains, and their rdf:first/rdf:rest lists) in the
// delta. The write-side cost is O(|delta closure|), not O(|graph|).
//
// The incremental path silently falls back to a full run whenever its
// preconditions fail: a different or never-materialized graph, a mutation
// the change set did not record (version mismatch), Graph.Clear, a naive
// Reasoner, or any removal in the change set. Removals fall back because
// materialization is monotonic — consequences of removed triples are NOT
// retracted (see StaleDerivations for detecting proofs that lost support);
// re-running the full closure after a removal reproduces exactly the
// historical "re-materialize everything" behavior.
type Reasoner struct {
	opts Options
	g    *store.Graph
	// dict is the graph's term dictionary at bind time; Graph.Clear swaps
	// the dictionary, which invalidates every cached ID and trace entry.
	dict      *store.TermDict
	v         vocab
	structIDs *store.IDSet
	expr      *exprTable
	queue     []iTriple
	stats     Stats
	// derivations maps each inferred triple to its first derivation. It
	// persists across runs so proofs over old and new inferences keep
	// working after incremental updates.
	derivations map[rdf.Triple]Derivation
	// pendingExpr queues structural triples (delta input or fresh
	// inferences) whose expression-table entries need patching; drained
	// before each queue pop so rule joins always see a current table.
	pendingExpr []iTriple
	// totalInferred accumulates inferred-triple counts across runs on the
	// same graph; it backs the Stats.Asserted/TotalInferred split.
	totalInferred int
	// lastVersion is the graph's mutation version when the last run
	// finished; MaterializeChanges refuses the delta path unless the change
	// set spans exactly [lastVersion, current].
	lastVersion uint64
	// prepared reports that vocab/expr/lastVersion describe a completed
	// closure of g.
	prepared bool
	startLen int
	// journaling/journal implement the derivation journal (see state.go):
	// when enabled, every newly recorded derivation's conclusion is
	// appended here in inference order so commit-scoped consumers can read
	// exact derivation deltas via JournalSince.
	journaling bool
	journal    []rdf.Triple
}

// New returns a Reasoner with the given options.
func New(opts Options) *Reasoner {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 1000
	}
	return &Reasoner{opts: opts}
}

// Materialize computes the OWL RL closure of g in place and returns run
// statistics. It can be called again after further assertions; the closure
// is recomputed from the full graph. When the mutations since the previous
// run are known, MaterializeChanges/MaterializeDelta do the same work in
// time proportional to the delta instead.
//
//feo:unordered
func (r *Reasoner) Materialize(g *store.Graph) Stats {
	start := time.Now()
	r.bind(g)
	r.beginRun(false)
	r.expr = buildExprTable(g, r.v)
	r.pendingExpr = nil
	if r.opts.Naive {
		r.runNaive()
	} else {
		r.queue = r.snapshot()
		r.drain()
	}
	return r.finishRun(start)
}

// MaterializeDelta asserts the added triples into g and incrementally
// extends the OWL RL closure with their consequences. It requires that this
// Reasoner already materialized g and that nothing else mutated the graph
// since (otherwise it falls back to a full Materialize, after asserting the
// triples). The caller may pass triples that are already present; they are
// simply re-seeded, which is harmless.
//
//feo:unordered
func (r *Reasoner) MaterializeDelta(g *store.Graph, added []rdf.Triple) Stats {
	if !r.canDelta(g) || g.Version() != r.lastVersion {
		for _, t := range added {
			g.AddTriple(t)
		}
		return r.Materialize(g)
	}
	seed := make([]iTriple, 0, len(added))
	for _, t := range added {
		s, p, o := g.InternTerm(t.S), g.InternTerm(t.P), g.InternTerm(t.O)
		if s == store.NoID || p == store.NoID || o == store.NoID {
			continue
		}
		// Seed only triples that are actually in the graph: AddID rejects
		// invalid kinds (literal subject, non-IRI predicate), and a rejected
		// triple must not feed the rules — the full path drops it too.
		if !g.AddID(s, p, o) && !g.HasID(s, p, o) {
			continue
		}
		seed = append(seed, iTriple{s, p, o})
	}
	return r.runDelta(seed)
}

// MaterializeChanges brings the closure of g up to date after the mutations
// recorded in cs (stopping the capture if it is still active). When the
// change set proves the only mutations since the last run were additions,
// the closure is extended incrementally from exactly those triples; any
// removal, a Clear, a version gap, or a foreign/never-materialized graph
// falls back to a full Materialize. A nil change set always runs full.
//
//feo:unordered
func (r *Reasoner) MaterializeChanges(g *store.Graph, cs *store.ChangeSet) Stats {
	cs.Stop()
	if cs == nil || cs.Graph() != g || !r.canDelta(g) ||
		cs.Cleared() || len(cs.Removed()) > 0 ||
		cs.BaseVersion() != r.lastVersion || cs.EndVersion() != g.Version() {
		return r.Materialize(g)
	}
	added := cs.Added()
	seed := make([]iTriple, len(added))
	for i, t := range added {
		seed[i] = iTriple{t.S, t.P, t.O}
	}
	return r.runDelta(seed)
}

// canDelta reports whether this Reasoner holds reusable closure state for g.
func (r *Reasoner) canDelta(g *store.Graph) bool {
	return r.prepared && r.g == g && !r.opts.Naive
}

// runDelta seeds the semi-naive queue with just the delta and drains it.
// Structural triples in the seed patch the expression table before any rule
// fires.
func (r *Reasoner) runDelta(seed []iTriple) Stats {
	start := time.Now()
	r.beginRun(true)
	r.queue = append(r.queue[:0], seed...)
	for _, t := range seed {
		if r.structIDs.Contains(t.P) {
			r.pendingExpr = append(r.pendingExpr, t)
		}
	}
	r.drain()
	return r.finishRun(start)
}

// bind points the Reasoner at g, resetting cumulative state when the graph
// changed, and (re-)interns the vocabulary. Graph.Clear replaces the term
// dictionary without changing the graph's identity, so the dictionary
// pointer is part of the identity check: after a Clear the cumulative
// inferred count and the derivation trace describe triples that no longer
// exist and are dropped with the old dictionary.
func (r *Reasoner) bind(g *store.Graph) {
	if r.g != g || r.dict != g.Dict() {
		r.g = g
		r.dict = g.Dict()
		r.totalInferred = 0
		if r.derivations != nil {
			r.derivations = make(map[rdf.Triple]Derivation)
		}
	}
	r.prepared = false
	r.v = internVocab(g)
	r.structIDs = r.v.structuralIDs()
}

// beginRun resets the per-run statistics.
func (r *Reasoner) beginRun(delta bool) {
	r.startLen = r.g.Len()
	if r.totalInferred > r.startLen {
		// More recorded inferences than triples: the graph shrank under us
		// (Clear, or removals of inferred triples). The split is lost;
		// restart the cumulative count rather than report negatives.
		r.totalInferred = 0
	}
	r.stats = Stats{
		Asserted:    r.startLen - r.totalInferred,
		Delta:       delta,
		RuleFirings: make(map[string]int),
	}
	if r.opts.TraceDerivations && r.derivations == nil {
		r.derivations = make(map[rdf.Triple]Derivation)
	}
}

// finishRun folds the run's growth into the cumulative counters and records
// the closure snapshot version for the next delta.
func (r *Reasoner) finishRun(start time.Time) Stats {
	run := r.g.Len() - r.startLen
	r.totalInferred += run
	r.stats.Inferred = run
	r.stats.TotalInferred = r.totalInferred
	r.stats.Duration = time.Since(start)
	r.lastVersion = r.g.Version()
	r.prepared = true
	return r.stats
}

// decode materializes an ID triple at the public API / tracing boundary.
func (r *Reasoner) decode(t iTriple) rdf.Triple {
	return rdf.Triple{S: r.g.TermOf(t.S), P: r.g.TermOf(t.P), O: r.g.TermOf(t.O)}
}

// snapshot returns every triple currently in the graph as ID triples, in
// index order.
func (r *Reasoner) snapshot() []iTriple {
	out := make([]iTriple, 0, r.g.Len())
	r.g.ForEachID(store.NoID, store.NoID, store.NoID, func(s, p, o store.ID) bool {
		out = append(out, iTriple{s, p, o})
		return true
	})
	return out
}

// Derivation returns how t was inferred. ok is false for asserted triples,
// for unknown triples, or when tracing was disabled.
func (r *Reasoner) Derivation(t rdf.Triple) (Derivation, bool) {
	d, ok := r.derivations[t]
	return d, ok
}

// ProofTree returns the derivation of t and, recursively, of its premises,
// flattened in dependency order (premises before conclusions). Asserted
// premises appear with rule "asserted".
type ProofStep struct {
	Conclusion rdf.Triple
	Rule       string
	Premises   []rdf.Triple
}

// Proof reconstructs the full derivation chain for t. The result is empty
// when tracing was disabled or t is unknown.
func (r *Reasoner) Proof(t rdf.Triple) []ProofStep {
	var steps []ProofStep
	seen := make(map[rdf.Triple]bool)
	var walk func(rdf.Triple)
	walk = func(cur rdf.Triple) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		d, ok := r.derivations[cur]
		if !ok {
			if r.g != nil && r.g.Has(cur.S, cur.P, cur.O) {
				steps = append(steps, ProofStep{Conclusion: cur, Rule: "asserted"})
			}
			return
		}
		for _, p := range d.Premises {
			walk(p)
		}
		steps = append(steps, ProofStep{Conclusion: cur, Rule: d.Rule, Premises: d.Premises})
	}
	walk(t)
	return steps
}

// StaleDerivations reports the inferred triples still present in the graph
// whose recorded derivation — transitively — used one of the removed
// triples as a premise that the graph no longer contains. Materialization
// is monotonic, so such inferences stay in the graph with proofs that no
// longer ground out; callers (feo.Session.Update) surface them instead of
// silently serving stale proofs. Best-effort: only each triple's FIRST
// derivation is recorded, so a conclusion reported stale may still hold via
// an alternative derivation the trace never saw. Empty when tracing is off.
func (r *Reasoner) StaleDerivations(removed []rdf.Triple) []rdf.Triple {
	if len(removed) == 0 || len(r.derivations) == 0 || r.g == nil {
		return nil
	}
	gone := make(map[rdf.Triple]bool, len(removed))
	for _, t := range removed {
		if !r.g.Has(t.S, t.P, t.O) { // deleted and not re-inserted
			gone[t] = true
		}
	}
	if len(gone) == 0 {
		return nil
	}
	// One pass over the trace builds a premise→conclusions index; a
	// worklist then walks only the affected cone, so the cost is
	// O(|trace| + |cone|) rather than one full rescan per dependency level.
	rev := make(map[rdf.Triple][]rdf.Triple)
	for concl, d := range r.derivations {
		for _, p := range d.Premises {
			rev[p] = append(rev[p], concl)
		}
	}
	stale := make(map[rdf.Triple]bool)
	work := make([]rdf.Triple, 0, len(gone))
	for t := range gone {
		work = append(work, t)
	}
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		for _, concl := range rev[t] {
			if !stale[concl] {
				stale[concl] = true
				work = append(work, concl)
			}
		}
	}
	out := make([]rdf.Triple, 0, len(stale))
	for t := range stale {
		if r.g.Has(t.S, t.P, t.O) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return compareTriples(out[i], out[j]) < 0 })
	return out
}

func compareTriples(a, b rdf.Triple) int {
	if c := rdf.Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := rdf.Compare(a.P, b.P); c != 0 {
		return c
	}
	return rdf.Compare(a.O, b.O)
}

// drain processes the semi-naive queue to fixpoint: each popped triple is
// matched against every rule position it could fill, joining the other
// premises against the current graph. Pending expression-table patches are
// applied (and their instance re-scans enqueued) before each pop, so rules
// never join against a stale table.
func (r *Reasoner) drain() {
	processed := 0
	for {
		if len(r.pendingExpr) > 0 {
			r.applyExprUpdates()
			continue
		}
		if len(r.queue) == 0 {
			break
		}
		t := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		r.applyDelta(t)
		processed++
		if processed > r.opts.MaxRounds*1_000_000 {
			break // safety valve; unreachable in practice
		}
	}
	r.stats.Rounds += processed
}

// applyExprUpdates drains the pending structural triples into incremental
// expression-table patches. Patching may activate expressions (re-scanning
// affected instances), which enqueues further work.
func (r *Reasoner) applyExprUpdates() {
	pend := r.pendingExpr
	r.pendingExpr = nil
	for _, t := range pend {
		r.updateExpr(t)
	}
}

// runNaive repeatedly applies every rule to every triple until a full round
// adds nothing. Kept for the A1 ablation benchmark and as the blessed
// reference implementation: it rebuilds the expression table from the whole
// graph every round and never takes the incremental path.
func (r *Reasoner) runNaive() {
	for round := 0; round < r.opts.MaxRounds; round++ {
		r.stats.Rounds = round + 1
		before := r.g.Len()
		r.expr = buildExprTable(r.g, r.v)
		r.pendingExpr = nil
		for _, t := range r.snapshot() {
			r.applyDelta(t)
		}
		// Inferred structural triples join the table at the next round's
		// rebuild; the fixpoint round runs with a complete table.
		r.pendingExpr = nil
		if r.g.Len() == before {
			return
		}
	}
}

// infer adds a conclusion triple; when new, it is queued for further delta
// processing and its derivation is recorded. All arguments are interned IDs.
func (r *Reasoner) infer(rule string, s, p, o store.ID, premises ...iTriple) {
	if !r.g.IsResourceID(s) || r.g.KindOf(p) != rdf.KindIRI {
		return
	}
	if !r.g.AddID(s, p, o) {
		return // already present (or invalid)
	}
	t := iTriple{s, p, o}
	r.stats.RuleFirings[rule]++
	if !r.opts.Naive {
		r.queue = append(r.queue, t)
	}
	if r.opts.TraceDerivations {
		prem := make([]rdf.Triple, len(premises))
		for i, pt := range premises {
			prem[i] = r.decode(pt)
		}
		concl := r.decode(t)
		r.derivations[concl] = Derivation{Rule: rule, Premises: prem}
		if r.journaling {
			r.journal = append(r.journal, concl)
		}
	}
	if !r.opts.Naive && r.structIDs.Contains(p) {
		r.pendingExpr = append(r.pendingExpr, t)
	}
}
