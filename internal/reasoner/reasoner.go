package reasoner

import (
	"fmt"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Options configures a materialization run.
type Options struct {
	// Naive selects full re-evaluation each round instead of delta-driven
	// semi-naive evaluation. Kept for the ablation benchmark; results are
	// identical, only slower.
	Naive bool
	// MaxRounds bounds naive evaluation rounds (and acts as a safety valve
	// for semi-naive). Zero means the default of 1000.
	MaxRounds int
	// TraceDerivations records, for every inferred triple, the rule and
	// premises that first produced it. Required for trace-based
	// explanations; costs one map entry per inferred triple.
	TraceDerivations bool
	// IncludeReflexive additionally materializes the reflexive
	// rdfs:subClassOf/subPropertyOf triples of OWL RL rule scm-cls/scm-op.
	// The paper's SPARQL listings assume Protégé-style inferred exports,
	// which omit reflexive axioms, so the default is false.
	IncludeReflexive bool
}

// Derivation records how an inferred triple was first derived.
type Derivation struct {
	Rule     string       // OWL RL rule name, e.g. "cax-sco"
	Premises []rdf.Triple // the triples that matched the rule body
}

// Stats summarizes a materialization run.
type Stats struct {
	Asserted    int // triples present before materialization
	Inferred    int // new triples added
	Rounds      int // naive rounds, or delta batches processed
	RuleFirings map[string]int
	Duration    time.Duration
}

// String renders the stats compactly for CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("asserted=%d inferred=%d rounds=%d duration=%s",
		s.Asserted, s.Inferred, s.Rounds, s.Duration)
}

// Reasoner materializes OWL 2 RL consequences into a graph.
type Reasoner struct {
	opts  Options
	g     *store.Graph
	expr  *exprTable
	queue []rdf.Triple
	stats Stats
	// derivations maps each inferred triple to its first derivation.
	derivations map[rdf.Triple]Derivation
	exprDirty   bool
}

// New returns a Reasoner with the given options.
func New(opts Options) *Reasoner {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 1000
	}
	return &Reasoner{opts: opts}
}

// Materialize computes the OWL RL closure of g in place and returns run
// statistics. It can be called again after further assertions; the closure
// is recomputed incrementally from the full graph.
func (r *Reasoner) Materialize(g *store.Graph) Stats {
	start := time.Now()
	r.g = g
	r.stats = Stats{Asserted: g.Len(), RuleFirings: make(map[string]int)}
	if r.opts.TraceDerivations && r.derivations == nil {
		r.derivations = make(map[rdf.Triple]Derivation)
	}
	r.expr = buildExprTable(g)
	if r.opts.Naive {
		r.runNaive()
	} else {
		r.runSemiNaive()
	}
	r.stats.Inferred = g.Len() - r.stats.Asserted
	r.stats.Duration = time.Since(start)
	return r.stats
}

// Derivation returns how t was inferred. ok is false for asserted triples,
// for unknown triples, or when tracing was disabled.
func (r *Reasoner) Derivation(t rdf.Triple) (Derivation, bool) {
	d, ok := r.derivations[t]
	return d, ok
}

// ProofTree returns the derivation of t and, recursively, of its premises,
// flattened in dependency order (premises before conclusions). Asserted
// premises appear with rule "asserted".
type ProofStep struct {
	Conclusion rdf.Triple
	Rule       string
	Premises   []rdf.Triple
}

// Proof reconstructs the full derivation chain for t. The result is empty
// when tracing was disabled or t is unknown.
func (r *Reasoner) Proof(t rdf.Triple) []ProofStep {
	var steps []ProofStep
	seen := make(map[rdf.Triple]bool)
	var walk func(rdf.Triple)
	walk = func(cur rdf.Triple) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		d, ok := r.derivations[cur]
		if !ok {
			if r.g != nil && r.g.Has(cur.S, cur.P, cur.O) {
				steps = append(steps, ProofStep{Conclusion: cur, Rule: "asserted"})
			}
			return
		}
		for _, p := range d.Premises {
			walk(p)
		}
		steps = append(steps, ProofStep{Conclusion: cur, Rule: d.Rule, Premises: d.Premises})
	}
	walk(t)
	return steps
}

// runSemiNaive seeds the queue with every asserted triple and then processes
// deltas: each new triple is matched against every rule position it could
// fill, joining other premises against the current graph. Each inferred
// triple enters the queue exactly once.
func (r *Reasoner) runSemiNaive() {
	r.queue = r.g.Triples()
	r.seedAxiomRules()
	processed := 0
	for len(r.queue) > 0 {
		t := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		if r.exprDirty {
			r.expr = buildExprTable(r.g)
			r.exprDirty = false
		}
		r.applyDelta(t)
		processed++
		if processed > r.opts.MaxRounds*1_000_000 {
			break // safety valve; unreachable in practice
		}
	}
	r.stats.Rounds = processed
}

// runNaive repeatedly applies every rule to every triple until a full round
// adds nothing. Kept for the A1 ablation benchmark.
func (r *Reasoner) runNaive() {
	for round := 0; round < r.opts.MaxRounds; round++ {
		r.stats.Rounds = round + 1
		before := r.g.Len()
		r.expr = buildExprTable(r.g)
		r.exprDirty = false
		r.seedAxiomRules()
		for _, t := range r.g.Triples() {
			r.applyDelta(t)
		}
		if r.g.Len() == before {
			return
		}
	}
}

// infer adds a conclusion triple; when new, it is queued for further delta
// processing and its derivation is recorded.
func (r *Reasoner) infer(rule string, s, p, o rdf.Term, premises ...rdf.Triple) {
	t := rdf.Triple{S: s, P: p, O: o}
	if !t.Valid() || r.g.Has(s, p, o) {
		return
	}
	r.g.AddTriple(t)
	r.stats.RuleFirings[rule]++
	if !r.opts.Naive {
		r.queue = append(r.queue, t)
	}
	if r.opts.TraceDerivations {
		prem := make([]rdf.Triple, len(premises))
		copy(prem, premises)
		r.derivations[t] = Derivation{Rule: rule, Premises: prem}
	}
	if structuralPredicates[p.Value] {
		r.exprDirty = true
	}
}

// seedAxiomRules applies rules with no instance premises (scm-cls style).
func (r *Reasoner) seedAxiomRules() {
	if !r.opts.IncludeReflexive {
		return
	}
	classIRI := rdf.ClassIRI
	r.g.ForEach(store.Wildcard, rdf.TypeIRI, classIRI, func(t rdf.Triple) bool {
		r.infer("scm-cls", t.S, rdf.SubClassOfIRI, t.S, t)
		r.infer("scm-cls", t.S, rdf.SubClassOfIRI, rdf.ThingIRI, t)
		return true
	})
}
