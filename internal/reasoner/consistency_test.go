package reasoner

import (
	"testing"

	"repro/internal/rdf"
)

func validateSrc(t *testing.T, src string) []Inconsistency {
	t.Helper()
	g := materialize(t, src)
	return Validate(g)
}

func hasRule(incs []Inconsistency, rule string) bool {
	for _, i := range incs {
		if i.Rule == rule {
			return true
		}
	}
	return false
}

func TestDisjointClassViolation(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:Food owl:disjointWith ex:Season .
ex:weird a ex:Food , ex:Season .
`)
	if !hasRule(incs, "cax-dw") {
		t.Errorf("expected cax-dw, got %v", incs)
	}
}

func TestDisjointViolationThroughSubclass(t *testing.T) {
	// The violation is only visible after materialization: x is asserted
	// into a subclass of one of the disjoint classes.
	incs := validateSrc(t, prelude+`
ex:Food owl:disjointWith ex:Season .
ex:Recipe rdfs:subClassOf ex:Food .
ex:weird a ex:Recipe , ex:Season .
`)
	if !hasRule(incs, "cax-dw") {
		t.Errorf("expected cax-dw via subclass, got %v", incs)
	}
}

func TestDisjointClean(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:Food owl:disjointWith ex:Season .
ex:apple a ex:Food . ex:autumn a ex:Season .
`)
	if len(incs) != 0 {
		t.Errorf("clean graph flagged: %v", incs)
	}
}

func TestSameDifferentClash(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:a owl:sameAs ex:b .
ex:a owl:differentFrom ex:b .
`)
	if !hasRule(incs, "eq-diff1") {
		t.Errorf("expected eq-diff1, got %v", incs)
	}
}

func TestSameDifferentClashInferred(t *testing.T) {
	// sameAs derived through a chain still clashes with differentFrom.
	incs := validateSrc(t, prelude+`
ex:a owl:sameAs ex:b . ex:b owl:sameAs ex:c .
ex:a owl:differentFrom ex:c .
`)
	if !hasRule(incs, "eq-diff1") {
		t.Errorf("expected eq-diff1 via eq-trans, got %v", incs)
	}
}

func TestNothingMembership(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:x a owl:Nothing .
`)
	if !hasRule(incs, "cls-nothing2") {
		t.Errorf("expected cls-nothing2, got %v", incs)
	}
}

func TestAsymmetricViolation(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:betterThan a owl:AsymmetricProperty .
ex:a ex:betterThan ex:b .
ex:b ex:betterThan ex:a .
`)
	if !hasRule(incs, "prp-asyp") {
		t.Errorf("expected prp-asyp, got %v", incs)
	}
	// Exactly one report per unordered pair.
	n := 0
	for _, i := range incs {
		if i.Rule == "prp-asyp" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("prp-asyp reported %d times, want 1", n)
	}
}

func TestIrreflexiveViolation(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:contains a owl:IrreflexiveProperty .
ex:soup ex:contains ex:soup .
`)
	if !hasRule(incs, "prp-irp") {
		t.Errorf("expected prp-irp, got %v", incs)
	}
}

func TestComplementViolation(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:NonVegan owl:complementOf ex:Vegan .
ex:dish a ex:Vegan , ex:NonVegan .
`)
	if !hasRule(incs, "cls-com") {
		t.Errorf("expected cls-com, got %v", incs)
	}
}

func TestNegativeAssertionViolation(t *testing.T) {
	incs := validateSrc(t, prelude+`
[] a owl:NegativePropertyAssertion ;
   owl:sourceIndividual ex:user ;
   owl:assertionProperty ex:like ;
   owl:targetIndividual ex:broccoli .
ex:user ex:like ex:broccoli .
`)
	if !hasRule(incs, "prp-npa1") {
		t.Errorf("expected prp-npa1, got %v", incs)
	}
}

func TestNegativeAssertionClean(t *testing.T) {
	incs := validateSrc(t, prelude+`
[] a owl:NegativePropertyAssertion ;
   owl:sourceIndividual ex:user ;
   owl:assertionProperty ex:like ;
   owl:targetIndividual ex:broccoli .
ex:user ex:like ex:spinach .
`)
	if len(incs) != 0 {
		t.Errorf("clean NPA flagged: %v", incs)
	}
}

func TestInconsistencyCarriesTriples(t *testing.T) {
	incs := validateSrc(t, prelude+`
ex:Food owl:disjointWith ex:Season .
ex:weird a ex:Food , ex:Season .
`)
	if len(incs) == 0 {
		t.Fatal("no inconsistencies")
	}
	inc := incs[0]
	if len(inc.Triples) < 2 {
		t.Errorf("inconsistency should carry the conflicting triples: %v", inc)
	}
	if inc.String() == "" {
		t.Error("String should render")
	}
	for _, tr := range inc.Triples {
		if tr.P == rdf.TypeIRI && !tr.S.IsValid() {
			t.Error("malformed evidence triple")
		}
	}
}
