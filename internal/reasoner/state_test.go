package reasoner

import (
	"bytes"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// stateTestGraph builds a small graph whose closure exercises subclass,
// domain, and transitive-property inference with a multi-step proof chain.
func stateTestGraph() *store.Graph {
	g := store.New()
	g.Add(iri("C1"), rdf.SubClassOfIRI, iri("C2"))
	g.Add(iri("C2"), rdf.SubClassOfIRI, iri("C3"))
	g.Add(iri("p"), rdf.DomainIRI, iri("C1"))
	g.Add(iri("t"), rdf.TypeIRI, rdf.NewIRI(rdf.OWLNS+"TransitiveProperty"))
	g.Add(iri("a"), iri("t"), iri("b"))
	g.Add(iri("b"), iri("t"), iri("c"))
	g.Add(iri("x"), iri("p"), iri("y"))
	return g
}

// TestClosureStateRoundTrip materializes, exports the closure state plus a
// graph snapshot, restores both into a fresh reasoner, and checks the
// restored reasoner is behaviorally identical: same stats, same proofs, and
// — the durability property — the next mutation takes the delta path.
func TestClosureStateRoundTrip(t *testing.T) {
	g := stateTestGraph()
	r1 := New(Options{TraceDerivations: true})
	st1 := r1.Materialize(g)
	if st1.TotalInferred == 0 {
		t.Fatal("test graph should produce inferences")
	}

	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := store.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(Options{TraceDerivations: true})
	r2.RestoreClosure(g2, r1.ClosureState())

	if r2.TotalInferred() != r1.TotalInferred() {
		t.Fatalf("TotalInferred = %d, want %d", r2.TotalInferred(), r1.TotalInferred())
	}

	// Every traced derivation answers identically, including multi-step
	// proof chains (a-t-c via transitivity, x type C3 via domain+subclass).
	for _, d := range r1.ClosureState().Derivations {
		p1 := r1.Proof(d.Conclusion)
		p2 := r2.Proof(d.Conclusion)
		if len(p1) != len(p2) {
			t.Fatalf("proof length for %v: %d vs %d", d.Conclusion, len(p1), len(p2))
		}
		for i := range p1 {
			if p1[i].Rule != p2[i].Rule || p1[i].Conclusion != p2[i].Conclusion {
				t.Fatalf("proof step %d for %v differs", i, d.Conclusion)
			}
		}
	}

	// A re-materialize on the restored reasoner must find the closure
	// complete (no new inferences) without a from-scratch run.
	if st := r2.Materialize(g2); st.Inferred != 0 {
		t.Fatalf("restored closure not complete: %d new inferences", st.Inferred)
	}

	// Incremental contract: a captured mutation extends the closure via the
	// delta path on both reasoners, and they agree.
	mutate := func(r *Reasoner, g *store.Graph) Stats {
		cs := g.StartCapture()
		g.Add(iri("c"), iri("t"), iri("d"))
		cs.Stop()
		return r.MaterializeChanges(g, cs)
	}
	s1 := mutate(r1, g)
	s2 := mutate(r2, g2)
	if !s1.Delta || !s2.Delta {
		t.Fatalf("expected delta path on both (live=%v restored=%v)", s1.Delta, s2.Delta)
	}
	if s1.Inferred != s2.Inferred || r1.TotalInferred() != r2.TotalInferred() {
		t.Fatalf("post-mutation divergence: inferred %d vs %d, total %d vs %d",
			s1.Inferred, s2.Inferred, r1.TotalInferred(), r2.TotalInferred())
	}
	if !g.Equal(g2) {
		t.Fatal("graphs diverged after identical mutation")
	}
}

func TestClosureStateDeterministic(t *testing.T) {
	g := stateTestGraph()
	r := New(Options{TraceDerivations: true})
	r.Materialize(g)
	a, b := r.ClosureState(), r.ClosureState()
	if len(a.Derivations) != len(b.Derivations) {
		t.Fatal("export length unstable")
	}
	for i := range a.Derivations {
		if a.Derivations[i].Conclusion != b.Derivations[i].Conclusion {
			t.Fatalf("export order unstable at %d", i)
		}
	}
}

func TestDerivationJournal(t *testing.T) {
	g := stateTestGraph()
	r := New(Options{TraceDerivations: true})
	r.StartDerivationJournal()
	r.Materialize(g)

	mark0 := r.JournalLen()
	if mark0 != r.TotalInferred() {
		t.Fatalf("journal holds %d entries, inferred %d", mark0, r.TotalInferred())
	}
	if got := r.JournalSince(0); len(got) != mark0 {
		t.Fatalf("JournalSince(0) = %d entries, want %d", len(got), mark0)
	}
	if got := r.JournalSince(mark0); got != nil {
		t.Fatalf("JournalSince(end) should be nil, got %d entries", len(got))
	}

	// A delta run journals exactly its own new derivations.
	cs := g.StartCapture()
	g.Add(iri("c"), iri("t"), iri("d"))
	cs.Stop()
	st := r.MaterializeChanges(g, cs)
	delta := r.JournalSince(mark0)
	if len(delta) != st.Inferred {
		t.Fatalf("journal delta %d entries, run inferred %d", len(delta), st.Inferred)
	}
	for _, d := range delta {
		if !g.Has(d.Conclusion.S, d.Conclusion.P, d.Conclusion.O) {
			t.Fatalf("journaled conclusion %v not in graph", d.Conclusion)
		}
		if got, ok := r.Derivation(d.Conclusion); !ok || got.Rule != d.Rule {
			t.Fatalf("journaled entry %v disagrees with trace", d.Conclusion)
		}
	}

	r.TrimJournal()
	if r.JournalLen() != 0 || r.JournalSince(0) != nil {
		t.Fatal("TrimJournal left entries behind")
	}
	// Negative and stale marks clamp instead of panicking.
	if r.JournalSince(-5) != nil || r.JournalSince(99) != nil {
		t.Fatal("out-of-range marks should return nil on an empty journal")
	}
}
