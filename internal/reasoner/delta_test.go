package reasoner

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

// ---- randomized incremental-vs-full equivalence harness ----
//
// The delta path's contract is that after every mutation step the
// incrementally maintained reasoner state is indistinguishable from
// throwing everything away and re-materializing the asserted triples from
// scratch: same closure, same set of traced (inferred) triples, same
// consistency verdict. The harness drives a random base graph through a
// random addition-only mutation schedule (instance triples, schema axioms,
// property characteristics, and OWL expressions arriving piecemeal —
// including rdf:first/rdf:rest list cells split across steps) and checks
// all three after every step against a from-scratch Materialize of the
// asserted-only mirror graph.
//
// The schedule is addition-only by design: removals are documented to fall
// back to a full monotonic re-run (covered by TestDeltaFallsBackOnRemoval),
// so from-scratch equivalence after a removal does not hold and is not
// claimed.

// tripleGen produces random triples and expression bundles over small pools.
type tripleGen struct {
	rng     *rand.Rand
	classes []rdf.Term
	props   []rdf.Term
	inds    []rdf.Term
	fresh   int
}

func newTripleGen(rng *rand.Rand) *tripleGen {
	g := &tripleGen{rng: rng}
	for i := 0; i < 6; i++ {
		g.classes = append(g.classes, iri(fmt.Sprintf("C%d", i)))
	}
	for i := 0; i < 5; i++ {
		g.props = append(g.props, iri(fmt.Sprintf("p%d", i)))
	}
	for i := 0; i < 8; i++ {
		g.inds = append(g.inds, iri(fmt.Sprintf("i%d", i)))
	}
	return g
}

func (tg *tripleGen) class() rdf.Term { return tg.classes[tg.rng.Intn(len(tg.classes))] }
func (tg *tripleGen) prop() rdf.Term  { return tg.props[tg.rng.Intn(len(tg.props))] }
func (tg *tripleGen) ind() rdf.Term   { return tg.inds[tg.rng.Intn(len(tg.inds))] }

func (tg *tripleGen) freshTerm(prefix string) rdf.Term {
	tg.fresh++
	return iri(fmt.Sprintf("%s%d", prefix, tg.fresh))
}

func tr(s, p, o rdf.Term) rdf.Triple { return rdf.Triple{S: s, P: p, O: o} }

// next returns the next random bundle of triples to assert. Expression
// bundles return several triples (class node, list cells) so the schedule
// can split them across mutation steps.
func (tg *tripleGen) next() []rdf.Triple {
	switch tg.rng.Intn(20) {
	case 0, 1, 2, 3, 4, 5: // instance property triple
		if tg.rng.Intn(5) == 0 {
			return []rdf.Triple{tr(tg.ind(), tg.prop(), rdf.NewLiteral(fmt.Sprintf("lit%d", tg.rng.Intn(4))))}
		}
		return []rdf.Triple{tr(tg.ind(), tg.prop(), tg.ind())}
	case 6, 7, 8, 9: // type assertion
		return []rdf.Triple{tr(tg.ind(), rdf.TypeIRI, tg.class())}
	case 10: // subclass / subproperty axiom
		if tg.rng.Intn(2) == 0 {
			return []rdf.Triple{tr(tg.class(), rdf.SubClassOfIRI, tg.class())}
		}
		return []rdf.Triple{tr(tg.prop(), rdf.SubPropertyOfIRI, tg.prop())}
	case 11: // domain / range
		if tg.rng.Intn(2) == 0 {
			return []rdf.Triple{tr(tg.prop(), rdf.DomainIRI, tg.class())}
		}
		return []rdf.Triple{tr(tg.prop(), rdf.RangeIRI, tg.class())}
	case 12: // inverse / equivalent
		switch tg.rng.Intn(3) {
		case 0:
			return []rdf.Triple{tr(tg.prop(), rdf.InverseOfIRI, tg.prop())}
		case 1:
			return []rdf.Triple{tr(tg.class(), rdf.EquivClassIRI, tg.class())}
		default:
			return []rdf.Triple{tr(tg.prop(), rdf.EquivPropIRI, tg.prop())}
		}
	case 13: // property characteristic
		chars := []string{
			rdf.OWLTransitiveProperty, rdf.OWLSymmetricProperty,
			rdf.OWLFunctionalProperty, rdf.OWLInverseFunctional,
		}
		return []rdf.Triple{tr(tg.prop(), rdf.TypeIRI, rdf.NewIRI(chars[tg.rng.Intn(len(chars))]))}
	case 14: // sameAs
		return []rdf.Triple{tr(tg.ind(), rdf.SameAsIRI, tg.ind())}
	case 15: // disjointness / differentFrom (consistency-relevant, no rules)
		if tg.rng.Intn(2) == 0 {
			return []rdf.Triple{tr(tg.class(), rdf.NewIRI(rdf.OWLDisjointWith), tg.class())}
		}
		return []rdf.Triple{tr(tg.ind(), rdf.NewIRI(rdf.OWLDifferentFrom), tg.ind())}
	case 16: // intersection or union class with a 2-3 member list
		kind := rdf.NewIRI(rdf.OWLIntersectionOf)
		prefix := "Int"
		if tg.rng.Intn(2) == 0 {
			kind = rdf.NewIRI(rdf.OWLUnionOf)
			prefix = "Uni"
		}
		c := tg.freshTerm(prefix)
		n := 2 + tg.rng.Intn(2)
		members := make([]rdf.Term, n)
		for i := range members {
			members[i] = tg.class()
		}
		return tg.listBundle(tr(c, kind, rdf.Term{}), members)
	case 17: // restriction, reachable via equivalentClass half the time
		node := tg.freshTerm("R")
		out := []rdf.Triple{tr(node, rdf.NewIRI(rdf.OWLOnProperty), tg.prop())}
		switch tg.rng.Intn(3) {
		case 0:
			filler := tg.class()
			if tg.rng.Intn(4) == 0 {
				filler = rdf.ThingIRI
			}
			out = append(out, tr(node, rdf.NewIRI(rdf.OWLSomeValuesFrom), filler))
		case 1:
			out = append(out, tr(node, rdf.NewIRI(rdf.OWLAllValuesFrom), tg.class()))
		default:
			out = append(out, tr(node, rdf.NewIRI(rdf.OWLHasValue), tg.ind()))
		}
		if tg.rng.Intn(2) == 0 {
			out = append(out, tr(tg.freshTerm("E"), rdf.EquivClassIRI, node))
		}
		tg.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	default: // property chain
		super := tg.prop()
		steps := []rdf.Term{tg.prop(), tg.prop()}
		return tg.listBundle(tr(super, rdf.NewIRI(rdf.OWLPropertyChainAxiom), rdf.Term{}), steps)
	}
}

// listBundle emits head plus the rdf:first/rdf:rest cells for members, in a
// shuffled order so the list is incomplete while the bundle lands.
func (tg *tripleGen) listBundle(head rdf.Triple, members []rdf.Term) []rdf.Triple {
	cells := make([]rdf.Term, len(members))
	for i := range cells {
		cells[i] = tg.freshTerm("b")
	}
	head.O = cells[0]
	out := []rdf.Triple{head}
	for i, m := range members {
		out = append(out, tr(cells[i], rdf.FirstIRI, m))
		if i == len(members)-1 {
			out = append(out, tr(cells[i], rdf.RestIRI, rdf.NilIRI))
		} else {
			out = append(out, tr(cells[i], rdf.RestIRI, cells[i+1]))
		}
	}
	tg.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func validateStrings(g *store.Graph) []string {
	var out []string
	for _, inc := range Validate(g) {
		out = append(out, inc.String())
	}
	sort.Strings(out)
	return out
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIncrementalFullEquivalenceRandomized(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			tg := newTripleGen(rng)
			opts := Options{TraceDerivations: true}
			if trial%5 == 4 {
				opts.IncludeReflexive = true
			}

			gInc := store.New()  // incrementally maintained closure
			gBase := store.New() // asserted-only mirror
			// Random base content.
			var pendingQueue []rdf.Triple
			for i := 0; i < 6+rng.Intn(8); i++ {
				pendingQueue = append(pendingQueue, tg.next()...)
			}
			baseN := rng.Intn(len(pendingQueue))
			for _, tp := range pendingQueue[:baseN] {
				gInc.AddTriple(tp)
				gBase.AddTriple(tp)
			}
			pendingQueue = pendingQueue[baseN:]
			rInc := New(opts)
			rInc.Materialize(gInc)

			// Keep a queue of future triples and feed it in random chunks.
			for i := 0; i < 8; i++ {
				pendingQueue = append(pendingQueue, tg.next()...)
			}
			step := 0
			for len(pendingQueue) > 0 {
				step++
				k := 1 + rng.Intn(4)
				if k > len(pendingQueue) {
					k = len(pendingQueue)
				}
				chunk := pendingQueue[:k]
				pendingQueue = pendingQueue[k:]

				cs := gInc.StartCapture()
				addedAny := false
				for _, tp := range chunk {
					if gInc.Has(tp.S, tp.P, tp.O) {
						continue // keep asserted/inferred split unambiguous
					}
					gInc.AddTriple(tp)
					gBase.AddTriple(tp)
					addedAny = true
				}
				st := rInc.MaterializeChanges(gInc, cs)
				if addedAny && !st.Delta {
					t.Fatalf("step %d: addition-only change set did not take the delta path", step)
				}

				// Reference: from-scratch closure of the asserted mirror.
				ref := gBase.Clone()
				rRef := New(opts)
				rRef.Materialize(ref)

				if !gInc.Equal(ref) {
					onlyInc, onlyRef := diff(gInc, ref)
					t.Fatalf("step %d: closures diverge\nincremental only: %v\nfrom-scratch only: %v",
						step, onlyInc, onlyRef)
				}
				// Derivation maps must trace exactly the inferred triples.
				for _, tp := range ref.Triples() {
					_, incOK := rInc.Derivation(tp)
					_, refOK := rRef.Derivation(tp)
					if incOK != refOK {
						t.Fatalf("step %d: derivation presence diverges for %v: incremental=%v from-scratch=%v",
							step, tp, incOK, refOK)
					}
					if incOK {
						d, _ := rInc.Derivation(tp)
						for _, prem := range d.Premises {
							if !gInc.Has(prem.S, prem.P, prem.O) {
								t.Fatalf("step %d: derivation of %v cites absent premise %v", step, tp, prem)
							}
						}
					}
				}
				// Consistency verdicts must agree.
				if vi, vr := validateStrings(gInc), validateStrings(ref); !stringSlicesEqual(vi, vr) {
					t.Fatalf("step %d: Validate diverges\nincremental: %v\nfrom-scratch: %v", step, vi, vr)
				}
				// Stats bookkeeping: asserted/inferred split must match the
				// asserted-only mirror exactly.
				if st.Asserted != gBase.Len() {
					t.Fatalf("step %d: stats.Asserted = %d, want %d asserted triples",
						step, st.Asserted, gBase.Len())
				}
				if st.TotalInferred != gInc.Len()-gBase.Len() {
					t.Fatalf("step %d: stats.TotalInferred = %d, want %d",
						step, st.TotalInferred, gInc.Len()-gBase.Len())
				}
			}
		})
	}
}

// TestMaterializeDeltaEntryPoint exercises the convenience API: the caller
// hands unasserted triples and the reasoner both asserts and closes them.
func TestMaterializeDeltaEntryPoint(t *testing.T) {
	g, err := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:C .
ex:x a ex:A .
`)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{TraceDerivations: true})
	r.Materialize(g)

	st := r.MaterializeDelta(g, []rdf.Triple{
		tr(iri("y"), rdf.TypeIRI, iri("A")),
	})
	if !st.Delta {
		t.Fatal("expected the incremental path")
	}
	for _, c := range []string{"A", "B", "C"} {
		if !g.IsA(iri("y"), iri(c)) {
			t.Errorf("y should be a %s after delta", c)
		}
	}
	// Proofs must work across the old and the new inferences.
	oldProof := r.Proof(rdf.Triple{S: iri("x"), P: rdf.TypeIRI, O: iri("C")})
	newProof := r.Proof(rdf.Triple{S: iri("y"), P: rdf.TypeIRI, O: iri("C")})
	if len(oldProof) == 0 || len(newProof) == 0 {
		t.Fatalf("proofs lost across delta: old=%d new=%d steps", len(oldProof), len(newProof))
	}
	for _, proof := range [][]ProofStep{oldProof, newProof} {
		grounded := false
		for _, s := range proof {
			if s.Rule == "asserted" {
				grounded = true
			}
		}
		if !grounded {
			t.Error("proof should ground out in asserted triples")
		}
	}
}

// TestDeltaExpressionArrivesLate: a restriction definition (including its
// equivalence link) arriving as a delta must classify pre-existing
// instance data, and vice versa.
func TestDeltaExpressionArrivesLate(t *testing.T) {
	g, err := turtle.Parse(prelude + `
ex:autumn a ex:Season .
ex:squash ex:availableIn ex:autumn .
`)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{TraceDerivations: true})
	r.Materialize(g)

	rest := rdf.NewBlank("rest1")
	st := r.MaterializeDelta(g, []rdf.Triple{
		tr(iri("SeasonalFood"), rdf.EquivClassIRI, rest),
		tr(rest, rdf.NewIRI(rdf.OWLOnProperty), iri("availableIn")),
		tr(rest, rdf.NewIRI(rdf.OWLSomeValuesFrom), iri("Season")),
	})
	if !st.Delta {
		t.Fatal("expected the incremental path")
	}
	if !g.IsA(iri("squash"), iri("SeasonalFood")) {
		t.Error("delta-loaded restriction must classify existing instances")
	}
}

// TestDeltaListSplitAcrossCalls: an owl:intersectionOf whose member list
// lands one cell at a time must activate once the list completes.
func TestDeltaListSplitAcrossCalls(t *testing.T) {
	g, err := turtle.Parse(prelude + `
ex:x a ex:A , ex:B .
`)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{})
	r.Materialize(g)

	b0, b1 := rdf.NewBlank("l0"), rdf.NewBlank("l1")
	r.MaterializeDelta(g, []rdf.Triple{
		tr(iri("Both"), rdf.NewIRI(rdf.OWLIntersectionOf), b0),
		tr(b0, rdf.FirstIRI, iri("A")),
	})
	if g.IsA(iri("x"), iri("Both")) {
		t.Fatal("incomplete list must not classify")
	}
	r.MaterializeDelta(g, []rdf.Triple{
		tr(b0, rdf.RestIRI, b1),
		tr(b1, rdf.FirstIRI, iri("B")),
		tr(b1, rdf.RestIRI, rdf.NilIRI),
	})
	if !g.IsA(iri("x"), iri("Both")) {
		t.Error("completed list must classify existing instances")
	}
}

// ---- fallback conditions ----

func TestDeltaFallsBackOnRemoval(t *testing.T) {
	g, err := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B .
ex:x a ex:A .
`)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{TraceDerivations: true})
	r.Materialize(g)

	cs := g.StartCapture()
	g.Remove(iri("x"), rdf.TypeIRI, iri("A"))
	g.Add(iri("y"), rdf.TypeIRI, iri("A"))
	st := r.MaterializeChanges(g, cs)
	if st.Delta {
		t.Fatal("change set with removals must take the full path")
	}
	// Monotonic contract: the old consequence is NOT retracted.
	if !g.IsA(iri("x"), iri("B")) {
		t.Error("full re-run must keep monotonic consequences")
	}
	if !g.IsA(iri("y"), iri("B")) {
		t.Error("full re-run must close the new assertion")
	}
}

func TestDeltaFallsBackOnUncapturedMutation(t *testing.T) {
	g, _ := turtle.Parse(prelude + `ex:A rdfs:subClassOf ex:B .`)
	r := New(Options{})
	r.Materialize(g)

	g.Add(iri("z"), rdf.TypeIRI, iri("A")) // not captured
	cs := g.StartCapture()
	g.Add(iri("x"), rdf.TypeIRI, iri("A"))
	st := r.MaterializeChanges(g, cs)
	if st.Delta {
		t.Fatal("version gap must force the full path")
	}
	if !g.IsA(iri("z"), iri("B")) {
		t.Error("uncaptured triple must still be closed by the fallback")
	}
}

func TestDeltaFallsBackOnForeignGraphAndClear(t *testing.T) {
	g1, _ := turtle.Parse(prelude + `ex:A rdfs:subClassOf ex:B .`)
	r := New(Options{})
	r.Materialize(g1)

	g2, _ := turtle.Parse(prelude + `ex:C rdfs:subClassOf ex:D . ex:x a ex:C .`)
	cs := g2.StartCapture()
	g2.Add(iri("y"), rdf.TypeIRI, iri("C"))
	if st := r.MaterializeChanges(g2, cs); st.Delta {
		t.Fatal("foreign graph must take the full path")
	}
	if !g2.IsA(iri("y"), iri("D")) {
		t.Error("foreign graph not closed")
	}

	cs2 := g2.StartCapture()
	g2.Clear()
	g2.Add(iri("a"), rdf.SubClassOfIRI, iri("b"))
	g2.Add(iri("i"), rdf.TypeIRI, iri("a"))
	st := r.MaterializeChanges(g2, cs2)
	if st.Delta {
		t.Fatal("cleared graph must take the full path")
	}
	if !g2.IsA(iri("i"), iri("b")) {
		t.Error("post-Clear closure incomplete (stale vocabulary?)")
	}
	// Clear swaps the dictionary: the cumulative inferred count and the
	// derivation trace must restart with it, not misreport the fresh load.
	if st.Asserted != 2 || st.TotalInferred != 1 {
		t.Errorf("post-Clear stats: asserted=%d total-inferred=%d, want 2/1",
			st.Asserted, st.TotalInferred)
	}
}

func TestNaiveReasonerNeverTakesDeltaPath(t *testing.T) {
	g, _ := turtle.Parse(prelude + `ex:A rdfs:subClassOf ex:B .`)
	r := New(Options{Naive: true})
	r.Materialize(g)
	cs := g.StartCapture()
	g.Add(iri("x"), rdf.TypeIRI, iri("A"))
	if st := r.MaterializeChanges(g, cs); st.Delta {
		t.Fatal("naive reasoner must not take the delta path")
	}
	if !g.IsA(iri("x"), iri("B")) {
		t.Error("naive fallback incomplete")
	}
}

// ---- Stats reporting across repeated runs (satellite bugfix) ----

func TestStatsAcrossRepeatedRuns(t *testing.T) {
	g, _ := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B .
ex:x a ex:A .
`)
	r := New(Options{})
	st1 := r.Materialize(g)
	if st1.Asserted != 2 || st1.Inferred != 1 || st1.TotalInferred != 1 {
		t.Fatalf("run 1: asserted=%d inferred=%d total=%d, want 2/1/1",
			st1.Asserted, st1.Inferred, st1.TotalInferred)
	}
	// Re-running on the unchanged graph must NOT count the first run's
	// inference as asserted (the historical misreport).
	st2 := r.Materialize(g)
	if st2.Asserted != 2 {
		t.Errorf("run 2: Asserted = %d, want 2 (prior inferences are not assertions)", st2.Asserted)
	}
	if st2.Inferred != 0 || st2.TotalInferred != 1 {
		t.Errorf("run 2: inferred=%d total=%d, want 0/1", st2.Inferred, st2.TotalInferred)
	}
	// One more asserted triple, one more inference: per-run vs cumulative.
	g.Add(iri("y"), rdf.TypeIRI, iri("A"))
	st3 := r.Materialize(g)
	if st3.Asserted != 3 || st3.Inferred != 1 || st3.TotalInferred != 2 {
		t.Errorf("run 3: asserted=%d inferred=%d total=%d, want 3/1/2",
			st3.Asserted, st3.Inferred, st3.TotalInferred)
	}
	// The delta path reports the same split.
	cs := g.StartCapture()
	g.Add(iri("z"), rdf.TypeIRI, iri("A"))
	st4 := r.MaterializeChanges(g, cs)
	if !st4.Delta {
		t.Fatal("expected delta path")
	}
	if st4.Asserted != 4 || st4.Inferred != 1 || st4.TotalInferred != 3 {
		t.Errorf("run 4: asserted=%d inferred=%d total=%d, want 4/1/3",
			st4.Asserted, st4.Inferred, st4.TotalInferred)
	}
	// Rebinding to a different graph resets the cumulative counter.
	g2, _ := turtle.Parse(prelude + `ex:o a ex:K .`)
	st5 := r.Materialize(g2)
	if st5.Asserted != 1 || st5.TotalInferred != 0 {
		t.Errorf("fresh graph: asserted=%d total=%d, want 1/0", st5.Asserted, st5.TotalInferred)
	}
}

// ---- deletion staleness detection ----

func TestStaleDerivations(t *testing.T) {
	g, _ := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:C .
ex:x a ex:A .
ex:u ex:p ex:v .
`)
	r := New(Options{TraceDerivations: true})
	r.Materialize(g)

	premise := tr(iri("x"), rdf.TypeIRI, iri("A"))
	g.Remove(premise.S, premise.P, premise.O)
	stale := r.StaleDerivations([]rdf.Triple{premise})
	want := map[rdf.Triple]bool{
		tr(iri("x"), rdf.TypeIRI, iri("B")): true, // direct
		tr(iri("x"), rdf.TypeIRI, iri("C")): true, // transitive
	}
	if len(stale) != len(want) {
		t.Fatalf("stale = %v, want %d triples", stale, len(want))
	}
	for _, s := range stale {
		if !want[s] {
			t.Errorf("unexpected stale triple %v", s)
		}
	}

	// A premise that was deleted but re-inserted supports its proofs again.
	g.AddTriple(premise)
	if stale := r.StaleDerivations([]rdf.Triple{premise}); len(stale) != 0 {
		t.Errorf("re-inserted premise should not leave stale proofs, got %v", stale)
	}

	// Removing an unrelated asserted triple leaves no stale proofs.
	unrelated := tr(iri("u"), iri("p"), iri("v"))
	g.Remove(unrelated.S, unrelated.P, unrelated.O)
	if stale := r.StaleDerivations([]rdf.Triple{unrelated}); len(stale) != 0 {
		t.Errorf("unrelated removal flagged stale proofs: %v", stale)
	}

	// A removed CONCLUSION is not reported (it is gone, not stale).
	conclB := tr(iri("x"), rdf.TypeIRI, iri("B"))
	g.Remove(conclB.S, conclB.P, conclB.O)
	g.Remove(premise.S, premise.P, premise.O)
	stale = r.StaleDerivations([]rdf.Triple{premise, conclB})
	for _, s := range stale {
		if s == conclB {
			t.Errorf("removed conclusion reported as stale: %v", s)
		}
	}
}

func TestStaleDerivationsRequiresTracing(t *testing.T) {
	g, _ := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B .
ex:x a ex:A .
`)
	r := New(Options{})
	r.Materialize(g)
	prem := tr(iri("x"), rdf.TypeIRI, iri("A"))
	g.Remove(prem.S, prem.P, prem.O)
	if stale := r.StaleDerivations([]rdf.Triple{prem}); stale != nil {
		t.Errorf("tracing off: want nil, got %v", stale)
	}
}

// TestMaterializeDeltaRejectsInvalidTriples: a delta triple the graph
// rejects (literal subject) must not feed the rules — the full path drops
// it via Triple.Valid, and the delta path must agree.
func TestMaterializeDeltaRejectsInvalidTriples(t *testing.T) {
	g, _ := turtle.Parse(prelude + `ex:p owl:inverseOf ex:q .`)
	r := New(Options{})
	r.Materialize(g)
	before := g.Len()
	r.MaterializeDelta(g, []rdf.Triple{
		{S: rdf.NewLiteral("not-a-subject"), P: iri("p"), O: iri("y")},
	})
	if g.Len() != before {
		t.Errorf("graph grew by %d from an invalid delta triple", g.Len()-before)
	}
	if g.Exists(iri("y"), iri("q"), store.Wildcard) {
		t.Error("rules fired on a triple the graph rejected")
	}
}
