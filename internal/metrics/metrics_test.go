package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("feo_requests_total", "Requests served.", Label{"endpoint", "/sparql"}, Label{"code", "200"})
	c.Inc()
	c.Add(2)
	r.GaugeFunc("feo_graph_triples", "Triples in the graph.", func() float64 { return 42 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE feo_graph_triples gauge",
		"feo_graph_triples 42\n",
		"# TYPE feo_requests_total counter",
		// Labels render in sorted name order regardless of argument order.
		`feo_requests_total{code="200",endpoint="/sparql"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("feo_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.6 || got > 5.7 {
		t.Fatalf("sum = %v", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`feo_latency_seconds_bucket{le="0.01"} 1`,
		`feo_latency_seconds_bucket{le="0.1"} 3`,
		`feo_latency_seconds_bucket{le="1"} 4`,
		`feo_latency_seconds_bucket{le="+Inf"} 5`,
		`feo_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register out of order; exposition must still be sorted and stable.
	r.Counter("feo_b_total", "b", Label{"x", "2"})
	r.Counter("feo_b_total", "b", Label{"x", "1"})
	r.Counter("feo_a_total", "a")
	var one, two strings.Builder
	if err := r.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two scrapes of identical state differ")
	}
	a := strings.Index(one.String(), "feo_a_total")
	b1 := strings.Index(one.String(), `feo_b_total{x="1"}`)
	b2 := strings.Index(one.String(), `feo_b_total{x="2"}`)
	if !(a < b1 && b1 < b2) {
		t.Errorf("families/series out of order:\n%s", one.String())
	}
}

func TestSameSeriesReturnsSameCollector(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("feo_x_total", "x", Label{"e", "1"})
	b := r.Counter("feo_x_total", "x", Label{"e", "1"})
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("feo_h", "h", nil)
	c := r.Counter("feo_c_total", "c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.003)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Errorf("count = %d, counter = %d", h.Count(), c.Value())
	}
	if got := h.Sum(); got < 23.9 || got > 24.1 {
		t.Errorf("sum = %v, want ~24", got)
	}
}
