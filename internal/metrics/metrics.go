// Package metrics is a minimal, dependency-free metrics registry with
// Prometheus text exposition. It exists so the serve tier can expose
// latency histograms, counters, and gauges on /metrics without pulling a
// client library into the build: the exposition format is a few lines of
// text per series, and the collectors the server needs — monotonic
// counters, fixed-bucket histograms, and scrape-time gauge functions —
// are small atomics.
//
// Collectors are safe for concurrent use. Exposition is deterministic:
// families render in registration-name order and series in label order,
// so two scrapes of the same state are byte-identical.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds, in seconds —
// Prometheus' conventional spread from 1ms to 10s.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Label is one name="value" pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams []*family // sorted by name
}

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series []*series
}

type series struct {
	labels string // rendered {a="b",...} or ""
	c      *Counter
	h      *Histogram
	g      func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// family returns (creating if needed) the named family, enforcing one
// TYPE per name. Callers hold r.mu.
func (r *Registry) family(name, help, typ string) *family {
	i := sort.Search(len(r.fams), func(i int) bool { return r.fams[i].name >= name })
	if i < len(r.fams) && r.fams[i].name == name {
		f := r.fams[i]
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	r.fams = append(r.fams, nil)
	copy(r.fams[i+1:], r.fams[i:])
	r.fams[i] = f
	return f
}

// addSeries appends a series to f in sorted label order, rejecting
// duplicates. Callers hold r.mu.
func (f *family) addSeries(s *series) {
	i := sort.Search(len(f.series), func(i int) bool { return f.series[i].labels >= s.labels })
	if i < len(f.series) && f.series[i].labels == s.labels {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", f.name, s.labels))
	}
	f.series = append(f.series, nil)
	copy(f.series[i+1:], f.series[i:])
	f.series[i] = s
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Counter is a monotonically increasing counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	ls := renderLabels(labels)
	for _, s := range f.series {
		if s.labels == ls {
			return s.c
		}
	}
	s := &series{labels: ls, c: &Counter{}}
	f.addSeries(s)
	return s.c
}

// Histogram is a fixed-bucket histogram of float64 observations.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.counts[len(h.bounds)].Add(1) // +Inf bucket
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Histogram registers (or fetches) a histogram series with the given
// upper bounds (DefBuckets when nil). Bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	ls := renderLabels(labels)
	for _, s := range f.series {
		if s.labels == ls {
			return s.h
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	f.addSeries(&series{labels: ls, h: h})
	return h
}

// GaugeFunc registers a gauge evaluated at scrape time. fn must be safe
// to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	f.addSeries(&series{labels: renderLabels(labels), g: fn})
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families appear in name order and
// series in label order; the output for a fixed collector state is
// byte-identical across calls.
//
//feo:emit
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.fams {
		b.Reset()
		b.WriteString("# HELP " + f.name + " " + f.help + "\n")
		b.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			switch {
			case s.c != nil:
				b.WriteString(f.name + s.labels + " " + strconv.FormatUint(s.c.Value(), 10) + "\n")
			case s.g != nil:
				b.WriteString(f.name + s.labels + " " + fmtFloat(s.g()) + "\n")
			case s.h != nil:
				h := s.h
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					b.WriteString(f.name + "_bucket" + bucketLabels(s.labels, fmtFloat(bound)) +
						" " + strconv.FormatUint(cum, 10) + "\n")
				}
				cum += h.counts[len(h.bounds)].Load()
				b.WriteString(f.name + "_bucket" + bucketLabels(s.labels, "+Inf") +
					" " + strconv.FormatUint(cum, 10) + "\n")
				b.WriteString(f.name + "_sum" + s.labels + " " + fmtFloat(h.Sum()) + "\n")
				b.WriteString(f.name + "_count" + s.labels + " " + strconv.FormatUint(h.Count(), 10) + "\n")
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// bucketLabels splices le="bound" into an existing label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
