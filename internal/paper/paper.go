// Package paper regenerates every artifact of the paper's evaluation: the
// one table (Table I), the four figures (Figures 1-4), and the three
// listings with their result rows (Listings 1-3). The CLI's `bench`
// subcommand prints these artifacts and the repository's benchmark suite
// times them; EXPERIMENTS.md records the paper-vs-measured comparison.
package paper

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Listing1Query is the paper's Listing 1 verbatim (CQ1, contextual).
const Listing1Query = `
SELECT DISTINCT ?characteristic ?classes
WHERE{
?WhyEatCauliflowerPotatoCurry feo:hasParameter ?parameter .
?parameter feo:hasCharacteristic ?characteristic .
?characteristic feo:isInternal False .
?systemChar a feo:SystemCharacteristic .
?userChar a feo:UserCharacteristic .
Filter ( ?characteristic = ?systemChar || ?characteristic = ?userChar ) .
?characteristic a ?classes .
?classes rdfs:subClassOf feo:Characteristic .
Filter Not Exists{?classes rdfs:subClassOf eo:knowledge }.
}`

// Listing2Query is the paper's Listing 2 verbatim (CQ2, contrastive).
const Listing2Query = `
Select DISTINCT ?factType ?factA ?foilType ?foilB
Where{
BIND (feo:WhyEatButternutSquashSoupOverBroccoliCheddarSoup as ?question) .
?question feo:hasPrimaryParameter ?parameterA .
?question feo:hasSecondaryParameter ?parameterB .
?parameterA feo:hasCharacteristic ?factA .
?factA a <https://purl.org/heals/eo#Fact>.
?factA a ?factType .
?factType (rdfs:subClassOf+) feo:Characteristic .
Filter Not Exists{?factType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> }.
Filter Not Exists{?s rdfs:subClassOf ?factType}.
?parameterB feo:hasCharacteristic ?foilB .
?foilB a <https://purl.org/heals/eo#Foil> .
?foilB a ?foilType.
?foilType (rdfs:subClassOf+) feo:Characteristic .
Filter Not Exists{?foilType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> }.
Filter Not Exists{?t rdfs:subClassOf ?foilType}.
}`

// Listing3Query is the paper's Listing 3 verbatim (CQ3, counterfactual).
const Listing3Query = `
SELECT Distinct ?property ?baseFood ?inheritedFood
WHERE{
feo:WhatIfIWasPregnant feo:hasParameter ?parameter .
?parameter ?property ?baseFood .
?property rdfs:subPropertyOf feo:isCharacteristicOf.
?baseFood a food:Food .
OPTIONAL { ?baseFood feo:isIngredientOf ?inheritedFood.}
}`

// Listing runs one of the paper's listings (1-3) against its competency
// dataset and returns the rendered result table.
//
//feo:emit
func Listing(n int) (string, error) {
	var query string
	var cq ontology.CompetencyQuestion
	switch n {
	case 1:
		query, cq = Listing1Query, ontology.CQ1
	case 2:
		query, cq = Listing2Query, ontology.CQ2
	case 3:
		query, cq = Listing3Query, ontology.CQ3
	default:
		return "", fmt.Errorf("paper: no listing %d", n)
	}
	g, _ := ontology.Dataset(cq)
	res, err := sparql.Run(g, query)
	if err != nil {
		return "", err
	}
	// The listings carry no ORDER BY; sort so the rendered artifact is
	// byte-stable across runs and across parallelism settings.
	res.Sort()
	var b strings.Builder
	fmt.Fprintf(&b, "Listing %d (competency question %d)\n\n", n, n)
	b.WriteString(res.Table())
	return b.String(), nil
}

// Table1 regenerates Table I: the nine explanation types with their
// example questions and the answers this reproduction generates for them
// on the combined competency dataset.
//
//feo:emit
func Table1() (string, error) {
	g, r := ontology.Dataset(ontology.CQAll)
	g.Add(ontology.Sushi, ontology.FoodCalories, rdf.NewInt(450))
	engine := core.NewEngine(g, r)
	engine.SetCoach(healthcoach.New(g, healthcoach.DefaultWeights()))
	vegan := rdf.NewIRI(rdf.KGNS + "diet/Vegan")
	g.Add(vegan, rdf.TypeIRI, ontology.FoodDiet)
	g.Add(vegan, rdf.LabelIRI, rdf.NewLiteral("Vegan"))

	questions := map[core.ExplanationType]core.Question{
		core.CaseBased:       {Type: core.CaseBased, Primary: ontology.BroccoliCheddarSoup, User: ontology.User1},
		core.Contextual:      {Type: core.Contextual, Primary: ontology.CauliflowerPotatoCurry},
		core.Contrastive:     {Type: core.Contrastive, Primary: ontology.ButternutSquashSoup, Secondary: ontology.BroccoliCheddarSoup},
		core.Counterfactual:  {Type: core.Counterfactual, Primary: ontology.Pregnancy},
		core.Everyday:        {Type: core.Everyday, Primary: ontology.Spinach},
		core.Scientific:      {Type: core.Scientific, Primary: ontology.Spinach},
		core.SimulationBased: {Type: core.SimulationBased, Primary: ontology.Sushi},
		core.Statistical:     {Type: core.Statistical, Primary: vegan, User: ontology.User2},
		core.TraceBased:      {Type: core.TraceBased, Primary: ontology.ButternutSquashSoup, User: ontology.User2},
	}
	var b strings.Builder
	b.WriteString("Table I: Explanation types, example questions, and generated answers\n\n")
	for _, et := range core.AllExplanationTypes() {
		// Explain's row pipeline enumerates index maps; the answer text it
		// settles on is pinned byte-for-byte by TestTable1AllNineRows.
		//feo:unordered
		ex, err := engine.Explain(questions[et])
		if err != nil {
			return "", fmt.Errorf("paper: table 1 row %v: %w", et, err)
		}
		fmt.Fprintf(&b, "%-18s %s\n%-18s -> %s\n\n", et.String(), et.ExampleQuestion(), "", ex.Summary)
	}
	return b.String(), nil
}

// Figure1 regenerates Figure 1: the subclass tree under
// feo:Characteristic after reasoning.
//
//feo:emit
func Figure1() string {
	g, _ := ontology.Dataset(ontology.CQAll)
	var b strings.Builder
	b.WriteString("Figure 1: Subclasses of feo:Characteristic\n\n")
	printClassTree(&b, g, ontology.FEOCharacteristic, 0, map[rdf.Term]bool{})
	return b.String()
}

func printClassTree(b *strings.Builder, g *store.Graph, class rdf.Term, depth int, seen map[rdf.Term]bool) {
	if seen[class] || depth > 6 {
		return
	}
	seen[class] = true
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), class.Compact(g.Namespaces()))
	// Direct subclasses: asserted subclass links whose subject is a named
	// class, skipping transitively materialized shortcuts.
	var kids []rdf.Term
	for _, sub := range g.Subjects(rdf.SubClassOfIRI, class) {
		if sub.IsBlank() || sub == class {
			continue
		}
		if isDirectSubclass(g, sub, class) {
			kids = append(kids, sub)
		}
	}
	sort.Slice(kids, func(i, j int) bool { return rdf.Compare(kids[i], kids[j]) < 0 })
	for _, k := range kids {
		printClassTree(b, g, k, depth+1, seen)
	}
}

// isDirectSubclass reports whether sub has no intermediate named class
// between itself and super.
func isDirectSubclass(g *store.Graph, sub, super rdf.Term) bool {
	for _, mid := range g.Objects(sub, rdf.SubClassOfIRI) {
		if mid == super || mid == sub || mid.IsBlank() {
			continue
		}
		if g.Has(mid, rdf.SubClassOfIRI, super) && !g.Has(super, rdf.SubClassOfIRI, mid) {
			return false
		}
	}
	return true
}

// Figure2 regenerates Figure 2: the property lattice (super-properties,
// sub-properties, and inverses), highlighting the paper's multiple
// inheritance example feo:forbids.
//
//feo:emit
func Figure2() string {
	g, _ := ontology.Dataset(ontology.CQAll)
	ns := g.Namespaces()
	var b strings.Builder
	b.WriteString("Figure 2: Exemplar property relationships\n\n")

	spo := map[string][]string{}
	g.ForEach(store.Wildcard, rdf.SubPropertyOfIRI, store.Wildcard, func(t rdf.Triple) bool {
		if strings.HasPrefix(t.S.Value, rdf.FEONS) && strings.HasPrefix(t.O.Value, rdf.FEONS) && t.S != t.O {
			spo[t.O.Compact(ns)] = append(spo[t.O.Compact(ns)], t.S.Compact(ns))
		}
		return true
	})
	supers := make([]string, 0, len(spo))
	for s := range spo {
		supers = append(supers, s)
	}
	sort.Strings(supers)
	for _, s := range supers {
		subs := spo[s]
		sort.Strings(subs)
		fmt.Fprintf(&b, "%s\n", s)
		for _, sub := range subs {
			fmt.Fprintf(&b, "  ^-- %s\n", sub)
		}
	}
	b.WriteString("\ninverses:\n")
	var invs []string
	g.ForEach(store.Wildcard, rdf.InverseOfIRI, store.Wildcard, func(t rdf.Triple) bool {
		if strings.HasPrefix(t.S.Value, rdf.FEONS) {
			invs = append(invs, fmt.Sprintf("  %s <-> %s", t.S.Compact(ns), t.O.Compact(ns)))
		}
		return true
	})
	sort.Strings(invs)
	b.WriteString(strings.Join(invs, "\n"))
	b.WriteString("\n")
	return b.String()
}

// Figure3 regenerates Figure 3: the fact/foil classification matrix for
// the CQ2 dataset. Each candidate characteristic is placed in its cell of
// the parameter × ecosystem grid.
//
//feo:emit
func Figure3() string {
	g, _ := ontology.Dataset(ontology.CQ2)
	ns := g.Namespaces()
	var facts, foils, neither []string
	seen := map[rdf.Term]bool{}
	g.ForEach(store.Wildcard, rdf.TypeIRI, ontology.FEOParameterChar, func(t rdf.Triple) bool {
		if seen[t.S] || t.S.IsBlank() {
			return true
		}
		seen[t.S] = true
		name := t.S.Compact(ns)
		switch {
		case g.IsA(t.S, ontology.EOFact):
			facts = append(facts, name)
		case g.IsA(t.S, ontology.EOFoil):
			foils = append(foils, name)
		default:
			neither = append(neither, name)
		}
		return true
	})
	sort.Strings(facts)
	sort.Strings(foils)
	sort.Strings(neither)
	var b strings.Builder
	b.WriteString("Figure 3: Facts and foils (CQ2 dataset)\n\n")
	fmt.Fprintf(&b, "facts   (supports parameter ∧ in ecosystem): %s\n", strings.Join(facts, ", "))
	fmt.Fprintf(&b, "foils   (opposes parameter ∧ in ecosystem):  %s\n", strings.Join(foils, ", "))
	fmt.Fprintf(&b, "neither (parameter characteristic only):     %s\n", strings.Join(neither, ", "))
	return b.String()
}

// Figure4 regenerates Figure 4: the inferred subsection of the ontology
// around the CQ1 parameter after reasoning — every triple within two hops
// of the parameter that the reasoner derived or that grounds the
// contextual answer.
//
//feo:emit
func Figure4() string {
	g, r := ontology.Dataset(ontology.CQ1)
	ns := g.Namespaces()
	var b strings.Builder
	b.WriteString("Figure 4: Inferred subsection for CQ1 (after reasoning)\n\n")
	focus := []rdf.Term{
		ontology.QWhyEatCauliflowerPotatoCurry,
		ontology.CauliflowerPotatoCurry,
		ontology.Cauliflower,
		ontology.Autumn,
	}
	var lines []string
	for _, f := range focus {
		g.ForEach(f, store.Wildcard, store.Wildcard, func(t rdf.Triple) bool {
			if t.O.IsBlank() {
				return true
			}
			marker := "asserted"
			if _, inferred := r.Derivation(t); inferred {
				marker = "inferred"
			}
			lines = append(lines, fmt.Sprintf("  [%s] %s %s %s",
				marker, t.S.Compact(ns), t.P.Compact(ns), t.O.Compact(ns)))
			return true
		})
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(dedupeStrings(lines), "\n"))
	b.WriteString("\n")
	return b.String()
}

func dedupeStrings(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
