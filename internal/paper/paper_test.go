package paper

import (
	"strings"
	"testing"
)

func TestListing1Reproduction(t *testing.T) {
	out, err := Listing(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's displayed row: feo:Autumn / feo:SeasonCharacteristic.
	if !strings.Contains(out, "feo:Autumn") || !strings.Contains(out, "feo:SeasonCharacteristic") {
		t.Errorf("Listing 1 missing the paper's row:\n%s", out)
	}
}

func TestListing2Reproduction(t *testing.T) {
	out, err := Listing(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"feo:SeasonCharacteristic", "feo:Autumn",
		"feo:AllergicFoodCharacteristic", "feo:Broccoli"} {
		if !strings.Contains(out, want) {
			t.Errorf("Listing 2 missing %s:\n%s", want, out)
		}
	}
}

func TestListing3Reproduction(t *testing.T) {
	out, err := Listing(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"feo:recommends", "feo:Spinach", "feo:SpinachFrittata",
		"feo:forbids", "feo:Sushi"} {
		if !strings.Contains(out, want) {
			t.Errorf("Listing 3 missing %s:\n%s", want, out)
		}
	}
}

func TestListingRange(t *testing.T) {
	if _, err := Listing(4); err == nil {
		t.Error("listing 4 should not exist")
	}
}

func TestTable1AllNineRows(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{"case-based", "contextual", "contrastive",
		"counterfactual", "everyday", "scientific", "simulation-based",
		"statistical", "trace-based"} {
		if !strings.Contains(out, typ) {
			t.Errorf("Table I missing type %s", typ)
		}
	}
	// Spot-check the flagship answers.
	if !strings.Contains(out, "Autumn is the current season") {
		t.Error("Table I contextual answer missing season")
	}
	if !strings.Contains(out, "forbidden from eating Sushi") {
		t.Error("Table I counterfactual answer missing sushi")
	}
}

func TestFigure1Tree(t *testing.T) {
	out := Figure1()
	for _, want := range []string{"feo:Characteristic", "feo:Parameter",
		"feo:UserCharacteristic", "feo:SystemCharacteristic",
		"feo:SeasonCharacteristic", "feo:AllergicFoodCharacteristic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 missing %s:\n%s", want, out)
		}
	}
	// Season must be nested under SystemCharacteristic (deeper indent).
	sysIdx := strings.Index(out, "feo:SystemCharacteristic")
	seaIdx := strings.Index(out, "feo:SeasonCharacteristic")
	if sysIdx < 0 || seaIdx < sysIdx {
		t.Error("Figure 1 ordering wrong: Season should follow System")
	}
}

func TestFigure2Lattice(t *testing.T) {
	out := Figure2()
	// The paper's multiple-inheritance example: forbids under both parents.
	if strings.Count(out, "^-- feo:forbids") < 2 {
		t.Errorf("Figure 2 should show forbids under two superproperties:\n%s", out)
	}
	if !strings.Contains(out, "feo:hasCharacteristic <-> feo:isCharacteristicOf") &&
		!strings.Contains(out, "feo:dislike <-> feo:dislikedBy") {
		t.Errorf("Figure 2 missing inverses:\n%s", out)
	}
}

func TestFigure3Matrix(t *testing.T) {
	out := Figure3()
	factsLine, foilsLine := "", ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "facts") {
			factsLine = line
		}
		if strings.HasPrefix(line, "foils") {
			foilsLine = line
		}
	}
	if !strings.Contains(factsLine, "feo:Autumn") {
		t.Errorf("Figure 3 facts should contain Autumn: %s", factsLine)
	}
	if !strings.Contains(foilsLine, "feo:Broccoli") {
		t.Errorf("Figure 3 foils should contain Broccoli: %s", foilsLine)
	}
	if strings.Contains(factsLine, "feo:Broccoli") || strings.Contains(foilsLine, "feo:Autumn") {
		t.Error("Figure 3 cells mixed up")
	}
}

func TestFigure4InferredSubgraph(t *testing.T) {
	out := Figure4()
	if !strings.Contains(out, "[inferred]") || !strings.Contains(out, "[asserted]") {
		t.Errorf("Figure 4 should mark asserted and inferred triples:\n%s", out)
	}
	// The key inferred triple: the curry transitively has characteristic
	// Autumn.
	if !strings.Contains(out, "feo:CauliflowerPotatoCurry feo:hasCharacteristic feo:Autumn") {
		t.Errorf("Figure 4 missing transitive closure triple:\n%s", out)
	}
}

// Figure 3 partition property: no instance may be both fact and foil, and
// the three cells are disjoint by construction of the output.
func TestFigure3PartitionDisjoint(t *testing.T) {
	out := Figure3()
	lines := strings.Split(out, "\n")
	cells := map[string][]string{}
	for _, l := range lines {
		for _, prefix := range []string{"facts", "foils", "neither"} {
			if strings.HasPrefix(l, prefix) {
				if i := strings.Index(l, ":"); i > 0 {
					for _, item := range strings.Split(l[i+1:], ",") {
						item = strings.TrimSpace(item)
						if item != "" {
							cells[prefix] = append(cells[prefix], item)
						}
					}
				}
			}
		}
	}
	seen := map[string]string{}
	for cell, items := range cells {
		for _, item := range items {
			if prev, dup := seen[item]; dup {
				t.Errorf("%s appears in both %s and %s", item, prev, cell)
			}
			seen[item] = cell
		}
	}
}
