package turtle

import (
	"bufio"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Write serializes g as Turtle: prefix directives first, then triples
// grouped by subject with predicate-object lists, in deterministic sorted
// order so output is diffable and usable in golden tests.
//
//feo:emit
func Write(w io.Writer, g *store.Graph) error {
	bw := bufio.NewWriter(w)
	ns := g.Namespaces()
	for _, prefix := range ns.Prefixes() {
		iri, _ := ns.IRIFor(prefix)
		if _, err := bw.WriteString("@prefix " + prefix + ": <" + iri + "> .\n"); err != nil {
			return err
		}
	}
	if len(ns.Prefixes()) > 0 {
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	triples := g.Triples()
	// Group by subject preserving sorted order.
	i := 0
	for i < len(triples) {
		j := i
		for j < len(triples) && triples[j].S == triples[i].S {
			j++
		}
		if err := writeSubjectBlock(bw, ns, triples[i:j]); err != nil {
			return err
		}
		i = j
	}
	return bw.Flush()
}

func writeSubjectBlock(bw *bufio.Writer, ns *rdf.Namespaces, ts []rdf.Triple) error {
	subj := formatTerm(ts[0].S, ns)
	if _, err := bw.WriteString(subj + " "); err != nil {
		return err
	}
	// Group by predicate within the already-sorted block.
	i := 0
	firstPred := true
	for i < len(ts) {
		j := i
		for j < len(ts) && ts[j].P == ts[i].P {
			j++
		}
		if !firstPred {
			if _, err := bw.WriteString(" ;\n    "); err != nil {
				return err
			}
		}
		firstPred = false
		pred := formatPredicate(ts[i].P, ns)
		if _, err := bw.WriteString(pred + " "); err != nil {
			return err
		}
		for k := i; k < j; k++ {
			if k > i {
				if _, err := bw.WriteString(", "); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(formatTerm(ts[k].O, ns)); err != nil {
				return err
			}
		}
		i = j
	}
	_, err := bw.WriteString(" .\n")
	return err
}

func formatPredicate(t rdf.Term, ns *rdf.Namespaces) string {
	if t.Value == rdf.RDFType {
		return "a"
	}
	return formatTerm(t, ns)
}

func formatTerm(t rdf.Term, ns *rdf.Namespaces) string {
	switch t.Kind {
	case rdf.KindIRI:
		return formatIRI(t.Value, ns)
	case rdf.KindBlank:
		return "_:" + t.Value
	case rdf.KindLiteral:
		if t.Lang != "" {
			return rdf.QuoteLiteral(t.Value) + "@" + t.Lang
		}
		switch {
		case t.Datatype == "" || t.Datatype == rdf.XSDString:
			return rdf.QuoteLiteral(t.Value)
		case t.Datatype == rdf.XSDInteger && isIntegerToken(t.Value),
			t.Datatype == rdf.XSDBoolean && (t.Value == "true" || t.Value == "false"),
			t.Datatype == rdf.XSDDecimal && isDecimalToken(t.Value):
			// Native Turtle token forms — only when the lexical form is a
			// token the parser will classify back to the same datatype
			// (an xsd:integer with lexical form "abc" must stay quoted).
			return t.Value
		default:
			return rdf.QuoteLiteral(t.Value) + "^^" + formatIRI(t.Datatype, ns)
		}
	default:
		return t.String()
	}
}

// formatIRI shrinks an IRI to a prefixed name only when the local part is
// a plain PN_CHARS run the parser reads back verbatim; anything fancier
// (dots, percent escapes, punctuation) stays an absolute IRI reference.
func formatIRI(iri string, ns *rdf.Namespaces) string {
	if q, ok := ns.Shrink(iri); ok && safeQName(q) {
		return q
	}
	return "<" + iri + ">"
}

func safeQName(q string) bool {
	i := strings.IndexByte(q, ':')
	if i < 0 {
		return false
	}
	local := q[i+1:]
	for _, r := range local {
		if !((r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9') || r == '_' || r == '-' || r >= utf8.RuneSelf) {
			return false
		}
	}
	return true
}

func isIntegerToken(s string) bool {
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isDecimalToken(s string) bool {
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		s = s[1:]
	}
	dot := strings.IndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return false
	}
	return isIntegerToken(s[:dot]) && isIntegerToken(s[dot+1:])
}

// WriteNTriples serializes g in canonical N-Triples: one triple per line,
// absolute IRIs, sorted order.
//
//feo:emit
func WriteNTriples(w io.Writer, g *store.Graph) error {
	bw := bufio.NewWriter(w)
	ts := g.Triples()
	sort.Slice(ts, func(i, j int) bool { return ts[i].String() < ts[j].String() })
	for _, t := range ts {
		if _, err := bw.WriteString(t.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
