package turtle

import (
	"bufio"
	"io"
	"sort"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Write serializes g as Turtle: prefix directives first, then triples
// grouped by subject with predicate-object lists, in deterministic sorted
// order so output is diffable and usable in golden tests.
func Write(w io.Writer, g *store.Graph) error {
	bw := bufio.NewWriter(w)
	ns := g.Namespaces()
	for _, prefix := range ns.Prefixes() {
		iri, _ := ns.IRIFor(prefix)
		if _, err := bw.WriteString("@prefix " + prefix + ": <" + iri + "> .\n"); err != nil {
			return err
		}
	}
	if len(ns.Prefixes()) > 0 {
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	triples := g.Triples()
	// Group by subject preserving sorted order.
	i := 0
	for i < len(triples) {
		j := i
		for j < len(triples) && triples[j].S == triples[i].S {
			j++
		}
		if err := writeSubjectBlock(bw, ns, triples[i:j]); err != nil {
			return err
		}
		i = j
	}
	return bw.Flush()
}

func writeSubjectBlock(bw *bufio.Writer, ns *rdf.Namespaces, ts []rdf.Triple) error {
	subj := formatTerm(ts[0].S, ns)
	if _, err := bw.WriteString(subj + " "); err != nil {
		return err
	}
	// Group by predicate within the already-sorted block.
	i := 0
	firstPred := true
	for i < len(ts) {
		j := i
		for j < len(ts) && ts[j].P == ts[i].P {
			j++
		}
		if !firstPred {
			if _, err := bw.WriteString(" ;\n    "); err != nil {
				return err
			}
		}
		firstPred = false
		pred := formatPredicate(ts[i].P, ns)
		if _, err := bw.WriteString(pred + " "); err != nil {
			return err
		}
		for k := i; k < j; k++ {
			if k > i {
				if _, err := bw.WriteString(", "); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(formatTerm(ts[k].O, ns)); err != nil {
				return err
			}
		}
		i = j
	}
	_, err := bw.WriteString(" .\n")
	return err
}

func formatPredicate(t rdf.Term, ns *rdf.Namespaces) string {
	if t.Value == rdf.RDFType {
		return "a"
	}
	return formatTerm(t, ns)
}

func formatTerm(t rdf.Term, ns *rdf.Namespaces) string {
	switch t.Kind {
	case rdf.KindIRI:
		if q, ok := ns.Shrink(t.Value); ok {
			return q
		}
		return "<" + t.Value + ">"
	case rdf.KindBlank:
		return "_:" + t.Value
	case rdf.KindLiteral:
		if t.Lang != "" {
			return rdf.QuoteLiteral(t.Value) + "@" + t.Lang
		}
		switch t.Datatype {
		case "", rdf.XSDString:
			return rdf.QuoteLiteral(t.Value)
		case rdf.XSDInteger, rdf.XSDBoolean, rdf.XSDDecimal:
			// Native Turtle token forms.
			return t.Value
		default:
			dt := t.Datatype
			if q, ok := ns.Shrink(dt); ok {
				return rdf.QuoteLiteral(t.Value) + "^^" + q
			}
			return rdf.QuoteLiteral(t.Value) + "^^<" + dt + ">"
		}
	default:
		return t.String()
	}
}

// WriteNTriples serializes g in canonical N-Triples: one triple per line,
// absolute IRIs, sorted order.
func WriteNTriples(w io.Writer, g *store.Graph) error {
	bw := bufio.NewWriter(w)
	ts := g.Triples()
	sort.Slice(ts, func(i, j int) bool { return ts[i].String() < ts[j].String() })
	for _, t := range ts {
		if _, err := bw.WriteString(t.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
