package turtle

import (
	"math/rand"
	"strings"
	"testing"
)

// corpus of valid documents used as mutation seeds.
var mutationSeeds = []string{
	`@prefix ex: <http://e/> . ex:s ex:p ex:o .`,
	`@prefix ex: <http://e/> . ex:s ex:p "lit"@en , 5 , 2.5 , true .`,
	`@prefix ex: <http://e/> . ex:s ex:p [ ex:q ( ex:a ex:b ) ] .`,
	`<http://e/s> a <http://e/C> ; <http://e/p> """long
string""" .`,
	`@base <http://e/> . <s> <p> <#o> .`,
	`_:b <http://e/p> "xé\n" .`,
}

// TestParserNeverPanics drives the parser with randomly mutated documents:
// every outcome must be a clean parse or a ParseError, never a panic or a
// hang.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	mutations := []func(string) string{
		func(s string) string { // delete a random byte
			if len(s) == 0 {
				return s
			}
			i := rng.Intn(len(s))
			return s[:i] + s[i+1:]
		},
		func(s string) string { // insert a random byte
			i := rng.Intn(len(s) + 1)
			return s[:i] + string(rune(rng.Intn(128))) + s[i:]
		},
		func(s string) string { // flip a random byte
			if len(s) == 0 {
				return s
			}
			b := []byte(s)
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
			return string(b)
		},
		func(s string) string { // truncate
			if len(s) == 0 {
				return s
			}
			return s[:rng.Intn(len(s))]
		},
		func(s string) string { // duplicate a slice
			if len(s) < 2 {
				return s
			}
			i, j := rng.Intn(len(s)), rng.Intn(len(s))
			if i > j {
				i, j = j, i
			}
			return s + s[i:j]
		},
	}
	for trial := 0; trial < 3000; trial++ {
		doc := mutationSeeds[rng.Intn(len(mutationSeeds))]
		for n := 0; n < 1+rng.Intn(4); n++ {
			doc = mutations[rng.Intn(len(mutations))](doc)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panic on input %q: %v", doc, r)
				}
			}()
			_, _ = Parse(doc) // error or success both fine
		}()
	}
}

// TestParserPathologicalInputs exercises adversarial shapes directly.
func TestParserPathologicalInputs(t *testing.T) {
	cases := []string{
		"",
		".",
		"@",
		"@prefix",
		"@prefix :",
		"@prefix : <",
		strings.Repeat("(", 1000),
		strings.Repeat("[", 1000),
		"<" + strings.Repeat("a", 10000) + ">",
		`"` + strings.Repeat("x", 10000),
		strings.Repeat(`<http://e/s> <http://e/p> <http://e/o> . `, 500),
		"\x00\x01\x02",
		"ex:s ex:p ex:o", // unbound prefix, missing dot
		"<s> <p> 1.2.3 .",
		"<s> <p> --5 .",
	}
	for _, doc := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", doc, r)
				}
			}()
			_, _ = Parse(doc)
		}()
	}
}
