// Package turtle reads and writes the Turtle and N-Triples concrete RDF
// syntaxes. The parser covers the Turtle features ontology documents use:
// prefix and base directives, prefixed names, the 'a' keyword, string
// (short and long), numeric, and boolean literals, language tags and
// datatypes, anonymous and labeled blank nodes, property lists,
// collections, and predicate-object/object list punctuation.
//
// Every valid N-Triples document is also a valid Turtle document, so the
// same parser loads both.
package turtle

import (
	"fmt"
	"strings"
	"sync/atomic"
	"unicode/utf8"

	"repro/internal/rdf"
	"repro/internal/store"
)

// parseSeq distinguishes anonymous blank nodes across parser invocations:
// without it, _:gen1 from one document would collide with _:gen1 from
// another when both are loaded into the same graph.
var parseSeq atomic.Uint64

// ParseError reports a syntax error with line and column position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("turtle: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Parse parses a Turtle document and returns its triples in a fresh graph.
func Parse(input string) (*store.Graph, error) {
	g := store.New()
	if err := ParseInto(g, input); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseInto parses a Turtle document and adds its triples to g. Prefix
// directives are recorded in g's namespace table. On error the graph may
// contain the triples parsed so far.
func ParseInto(g *store.Graph, input string) error {
	// Turtle documents are UTF-8 by definition; rejecting invalid bytes up
	// front keeps every downstream consumer (and the writer, whose string
	// escaping iterates runes) loss-free on anything this parser accepts.
	if !utf8.ValidString(input) {
		return &ParseError{Line: 1, Col: 1, Msg: "document is not valid UTF-8"}
	}
	p := &parser{
		src: input, line: 1, col: 1, g: g, b: g.Bulk(), ns: g.Namespaces(),
		bnodePrefix: fmt.Sprintf("d%d", parseSeq.Add(1)),
	}
	return p.parseDocument()
}

type parser struct {
	src         string
	pos         int
	line        int
	col         int
	g           *store.Graph
	b           *store.Bulk // bulk writer: repeated subjects/predicates intern once
	ns          *rdf.Namespaces
	bnodeSeq    int
	bnodePrefix string
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) peekAt(off int) byte {
	if p.pos+off >= len(p.src) {
		return 0
	}
	return p.src[p.pos+off]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

// skipWS skips whitespace and comments.
func (p *parser) skipWS() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.advance()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
		default:
			return
		}
	}
}

func (p *parser) expect(c byte) error {
	if p.eof() || p.peek() != c {
		return p.errf("expected %q, found %q", string(c), string(p.peek()))
	}
	p.advance()
	return nil
}

func (p *parser) hasKeyword(kw string) bool {
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	// Must be followed by whitespace or delimiter.
	next := p.peekAt(len(kw))
	return next == 0 || next == ' ' || next == '\t' || next == '\r' || next == '\n' || next == '<' || next == '#'
}

func (p *parser) consumeKeyword(kw string) {
	for i := 0; i < len(kw); i++ {
		p.advance()
	}
}

func (p *parser) parseDocument() error {
	for {
		p.skipWS()
		if p.eof() {
			return nil
		}
		switch {
		case p.peek() == '@':
			if err := p.parseAtDirective(); err != nil {
				return err
			}
		case p.hasKeyword("PREFIX"):
			p.consumeKeyword("PREFIX")
			if err := p.parsePrefixBody(false); err != nil {
				return err
			}
		case p.hasKeyword("BASE"):
			p.consumeKeyword("BASE")
			if err := p.parseBaseBody(false); err != nil {
				return err
			}
		default:
			if err := p.parseTriples(); err != nil {
				return err
			}
		}
	}
}

func (p *parser) parseAtDirective() error {
	p.advance() // '@'
	switch {
	case strings.HasPrefix(p.src[p.pos:], "prefix"):
		for i := 0; i < len("prefix"); i++ {
			p.advance()
		}
		return p.parsePrefixBody(true)
	case strings.HasPrefix(p.src[p.pos:], "base"):
		for i := 0; i < len("base"); i++ {
			p.advance()
		}
		return p.parseBaseBody(true)
	default:
		return p.errf("unknown directive after '@'")
	}
}

func (p *parser) parsePrefixBody(dotted bool) error {
	p.skipWS()
	start := p.pos
	for !p.eof() && p.peek() != ':' {
		p.advance()
	}
	prefix := strings.TrimSpace(p.src[start:p.pos])
	if err := p.expect(':'); err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.ns.Bind(prefix, iri)
	if dotted {
		p.skipWS()
		return p.expect('.')
	}
	return nil
}

func (p *parser) parseBaseBody(dotted bool) error {
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.ns.SetBase(iri)
	if dotted {
		p.skipWS()
		return p.expect('.')
	}
	return nil
}

// parseTriples parses: subject predicateObjectList '.' or a blank node
// property list optionally followed by a predicateObjectList.
func (p *parser) parseTriples() error {
	var subj rdf.Term
	var err error
	if p.peek() == '[' {
		subj, err = p.parseBlankNodePropertyList()
		if err != nil {
			return err
		}
		p.skipWS()
		if p.peek() == '.' {
			p.advance()
			return nil
		}
	} else {
		subj, err = p.parseSubject()
		if err != nil {
			return err
		}
	}
	if err := p.parsePredicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	return p.expect('.')
}

func (p *parser) parsePredicateObjectList(subj rdf.Term) error {
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		if err := p.parseObjectList(subj, pred); err != nil {
			return err
		}
		p.skipWS()
		if p.peek() != ';' {
			return nil
		}
		p.advance()
		p.skipWS()
		// Allow trailing ';' before '.' or ']'.
		if c := p.peek(); c == '.' || c == ']' || c == ';' {
			for p.peek() == ';' {
				p.advance()
				p.skipWS()
			}
			return nil
		}
	}
}

func (p *parser) parseObjectList(subj, pred rdf.Term) error {
	for {
		p.skipWS()
		obj, err := p.parseObject()
		if err != nil {
			return err
		}
		if !p.b.Add(subj, pred, obj) && !p.g.Has(subj, pred, obj) {
			return p.errf("invalid triple %s %s %s", subj, pred, obj)
		}
		p.skipWS()
		if p.peek() != ',' {
			return nil
		}
		p.advance()
	}
}

func (p *parser) parseSubject() (rdf.Term, error) {
	p.skipWS()
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '_' && p.peekAt(1) == ':':
		return p.parseBlankLabel()
	case c == '(':
		return p.parseCollection()
	default:
		return p.parsePrefixedName()
	}
}

func (p *parser) parsePredicate() (rdf.Term, error) {
	p.skipWS()
	if p.peek() == 'a' {
		next := p.peekAt(1)
		if next == ' ' || next == '\t' || next == '\r' || next == '\n' || next == '<' || next == '[' || next == '_' || next == '(' || next == '"' {
			p.advance()
			return rdf.TypeIRI, nil
		}
	}
	if p.peek() == '<' {
		iri, err := p.parseIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	}
	return p.parsePrefixedName()
}

func (p *parser) parseObject() (rdf.Term, error) {
	p.skipWS()
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '_' && p.peekAt(1) == ':':
		return p.parseBlankLabel()
	case c == '[':
		return p.parseBlankNodePropertyList()
	case c == '(':
		return p.parseCollection()
	case c == '"' || c == '\'':
		return p.parseLiteral()
	case c == '+' || c == '-' || (c >= '0' && c <= '9') || (c == '.' && isDigit(p.peekAt(1))):
		return p.parseNumericLiteral()
	case p.hasBareKeyword("true"):
		p.consumeKeyword("true")
		return rdf.NewBool(true), nil
	case p.hasBareKeyword("false"):
		p.consumeKeyword("false")
		return rdf.NewBool(false), nil
	default:
		return p.parsePrefixedName()
	}
}

// hasBareKeyword matches a lowercase keyword followed by a non-name char.
func (p *parser) hasBareKeyword(kw string) bool {
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	next := p.peekAt(len(kw))
	return !isPNChar(rune(next)) && next != ':'
}

func (p *parser) parseIRIRef() (string, error) {
	if err := p.expect('<'); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated IRI")
		}
		c := p.advance()
		switch c {
		case '>':
			iri := p.ns.Resolve(b.String())
			if iri == "" {
				// "<>" with no base in scope: an empty IRI denotes nothing
				// and would collide with the plain-literal encoding of
				// datatypes downstream.
				return "", p.errf("empty IRI reference")
			}
			return iri, nil
		case '\\':
			if p.eof() {
				return "", p.errf("unterminated escape in IRI")
			}
			e := p.advance()
			switch e {
			case 'u':
				r, err := p.readHex(4)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			case 'U':
				r, err := p.readHex(8)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			default:
				return "", p.errf("invalid IRI escape \\%c", e)
			}
		case ' ', '\n', '\t':
			return "", p.errf("whitespace in IRI")
		default:
			b.WriteByte(c)
		}
	}
}

func (p *parser) readHex(n int) (rune, error) {
	var v rune
	for i := 0; i < n; i++ {
		if p.eof() {
			return 0, p.errf("unterminated hex escape")
		}
		c := p.advance()
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			v |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v |= rune(c-'A') + 10
		default:
			return 0, p.errf("invalid hex digit %q", string(c))
		}
	}
	return v, nil
}

func (p *parser) parseBlankLabel() (rdf.Term, error) {
	p.advance() // '_'
	p.advance() // ':'
	start := p.pos
	for !p.eof() && (isPNChar(rune(p.peek())) || p.peek() == '.') {
		// A '.' only stays in the label if followed by another label char.
		if p.peek() == '.' && !isPNChar(rune(p.peekAt(1))) {
			break
		}
		p.advance()
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.NewBlank(p.src[start:p.pos]), nil
}

func (p *parser) freshBlank() rdf.Term {
	p.bnodeSeq++
	return rdf.NewBlank(fmt.Sprintf("%sgen%d", p.bnodePrefix, p.bnodeSeq))
}

func (p *parser) parseBlankNodePropertyList() (rdf.Term, error) {
	p.advance() // '['
	node := p.freshBlank()
	p.skipWS()
	if p.peek() == ']' {
		p.advance()
		return node, nil
	}
	if err := p.parsePredicateObjectList(node); err != nil {
		return rdf.Term{}, err
	}
	p.skipWS()
	if err := p.expect(']'); err != nil {
		return rdf.Term{}, err
	}
	return node, nil
}

func (p *parser) parseCollection() (rdf.Term, error) {
	p.advance() // '('
	var members []rdf.Term
	for {
		p.skipWS()
		if p.eof() {
			return rdf.Term{}, p.errf("unterminated collection")
		}
		if p.peek() == ')' {
			p.advance()
			break
		}
		obj, err := p.parseObject()
		if err != nil {
			return rdf.Term{}, err
		}
		members = append(members, obj)
	}
	if len(members) == 0 {
		return rdf.NilIRI, nil
	}
	head := p.freshBlank()
	cur := head
	for i, m := range members {
		p.b.Add(cur, rdf.FirstIRI, m)
		if i == len(members)-1 {
			p.b.Add(cur, rdf.RestIRI, rdf.NilIRI)
		} else {
			next := p.freshBlank()
			p.b.Add(cur, rdf.RestIRI, next)
			cur = next
		}
	}
	return head, nil
}

func (p *parser) parsePrefixedName() (rdf.Term, error) {
	start := p.pos
	for !p.eof() && p.peek() != ':' && isPNChar(rune(p.peek())) {
		p.advance()
	}
	if p.eof() || p.peek() != ':' {
		return rdf.Term{}, p.errf("expected prefixed name")
	}
	prefix := p.src[start:p.pos]
	p.advance() // ':'
	lstart := p.pos
	for !p.eof() {
		c := p.peek()
		if isPNChar(rune(c)) || c == '%' {
			p.advance()
			continue
		}
		if c == '.' && isPNChar(rune(p.peekAt(1))) {
			p.advance()
			continue
		}
		if c == '\\' && p.peekAt(1) != 0 {
			p.advance()
			p.advance()
			continue
		}
		break
	}
	local := strings.ReplaceAll(p.src[lstart:p.pos], "\\", "")
	base, ok := p.ns.IRIFor(prefix)
	if !ok {
		return rdf.Term{}, p.errf("unbound prefix %q", prefix)
	}
	return rdf.NewIRI(base + local), nil
}

func (p *parser) parseLiteral() (rdf.Term, error) {
	lex, err := p.parseString()
	if err != nil {
		return rdf.Term{}, err
	}
	switch {
	case p.peek() == '@':
		p.advance()
		start := p.pos
		for !p.eof() {
			c := p.peek()
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' {
				p.advance()
			} else {
				break
			}
		}
		if p.pos == start {
			return rdf.Term{}, p.errf("empty language tag")
		}
		return rdf.NewLangLiteral(lex, p.src[start:p.pos]), nil
	case p.peek() == '^' && p.peekAt(1) == '^':
		p.advance()
		p.advance()
		var dt rdf.Term
		if p.peek() == '<' {
			iri, err := p.parseIRIRef()
			if err != nil {
				return rdf.Term{}, err
			}
			dt = rdf.NewIRI(iri)
		} else {
			dt, err = p.parsePrefixedName()
			if err != nil {
				return rdf.Term{}, err
			}
		}
		return rdf.NewTypedLiteral(lex, dt.Value), nil
	default:
		return rdf.NewLiteral(lex), nil
	}
}

func (p *parser) parseString() (string, error) {
	quote := p.advance() // '"' or '\''
	long := false
	if p.peek() == quote && p.peekAt(1) == quote {
		p.advance()
		p.advance()
		long = true
	} else if p.peek() == quote {
		// Empty short string.
		p.advance()
		return "", nil
	}
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated string")
		}
		c := p.peek()
		if c == quote {
			if !long {
				p.advance()
				return b.String(), nil
			}
			if p.peekAt(1) == quote && p.peekAt(2) == quote {
				p.advance()
				p.advance()
				p.advance()
				return b.String(), nil
			}
			b.WriteByte(p.advance())
			continue
		}
		if c == '\\' {
			p.advance()
			if p.eof() {
				return "", p.errf("unterminated escape")
			}
			e := p.advance()
			switch e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			case 'u':
				r, err := p.readHex(4)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			case 'U':
				r, err := p.readHex(8)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			default:
				return "", p.errf("invalid string escape \\%c", e)
			}
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return "", p.errf("newline in short string")
		}
		b.WriteByte(p.advance())
	}
}

func (p *parser) parseNumericLiteral() (rdf.Term, error) {
	start := p.pos
	if p.peek() == '+' || p.peek() == '-' {
		p.advance()
	}
	sawDot, sawExp := false, false
	for !p.eof() {
		c := p.peek()
		switch {
		case isDigit(c):
			p.advance()
		case c == '.' && !sawDot && !sawExp && isDigit(p.peekAt(1)):
			sawDot = true
			p.advance()
		case (c == 'e' || c == 'E') && !sawExp:
			sawExp = true
			p.advance()
			if p.peek() == '+' || p.peek() == '-' {
				p.advance()
			}
		default:
			goto done
		}
	}
done:
	lex := p.src[start:p.pos]
	if lex == "" || lex == "+" || lex == "-" {
		return rdf.Term{}, p.errf("malformed numeric literal")
	}
	switch {
	case sawExp:
		return rdf.NewTypedLiteral(lex, rdf.XSDDouble), nil
	case sawDot:
		return rdf.NewTypedLiteral(lex, rdf.XSDDecimal), nil
	default:
		return rdf.NewTypedLiteral(lex, rdf.XSDInteger), nil
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isPNChar approximates Turtle's PN_CHARS production: ASCII letters, digits,
// underscore, hyphen, and any non-ASCII rune.
func isPNChar(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
		(r >= '0' && r <= '9') || r == '_' || r == '-' || r >= utf8.RuneSelf
}
