package turtle_test

// Native fuzz target for the Turtle parser/writer pair, seeded with
// documents shaped like the paper's ontology exports (prefixed IRIs,
// rdf:type abbreviation, predicate and object lists, anonymous blank
// nodes, language tags, typed literals, escapes). The invariant: any
// document the parser accepts must serialize (Write) to a document the
// parser accepts again, and the two graphs must be isomorphic (blank
// labels may differ; structure must not).
//
// CI runs `go test -fuzz=FuzzParseTurtle -fuzztime=30s` as a smoke pass.

import (
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/turtle"
)

var turtleSeeds = []string{
	`<http://e/s> <http://e/p> <http://e/o> .`,
	"@prefix ex: <http://e/> .\nex:s a ex:Class ; ex:p \"v\" , \"w\"@en , \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .",
	"@prefix ex: <http://e/> .\nex:s ex:p [ ex:q ex:o ; ex:r \"nested\" ] .",
	"@prefix ex: <http://e/> .\n_:b1 ex:p _:b2 .\n_:b2 ex:p _:b1 .",
	"@prefix ex: <http://e/> .\nex:s ex:num 3.5 ; ex:neg -2 ; ex:flag true .",
	`<http://e/s> <http://e/p> "esc \" quote \\ back \n line" .`,
	"@prefix : <http://e/> .\n:s :p :o .",
	"@base <http://base/> .\n<rel> <p> <o> .",
	"# a comment\n<http://e/s> <http://e/p> \"after comment\" . # trailing",
}

func FuzzParseTurtle(f *testing.F) {
	for _, seed := range turtleSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := turtle.Parse(src) // must never panic
		if err != nil {
			return
		}
		var out strings.Builder
		if err := turtle.Write(&out, g); err != nil {
			t.Fatalf("write failed on parsed graph: %v\ninput: %q", err, src)
		}
		g2, err := turtle.Parse(out.String())
		if err != nil {
			t.Fatalf("serialized graph failed to reparse: %v\ninput: %q\nwritten:\n%s", err, src, out.String())
		}
		if !store.Isomorphic(g, g2) {
			t.Fatalf("parse→write→reparse is not isomorphic (%d vs %d triples)\ninput: %q\nwritten:\n%s",
				g.Len(), g2.Len(), src, out.String())
		}
	})
}
