package turtle

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func mustParse(t *testing.T, src string) *store.Graph {
	t.Helper()
	g, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\ninput:\n%s", err, src)
	}
	return g
}

func TestParseSimpleTriple(t *testing.T) {
	g := mustParse(t, `<http://e/s> <http://e/p> <http://e/o> .`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o")) {
		t.Error("triple missing")
	}
}

func TestParsePrefixAndQName(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p ex:o .
`)
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o")) {
		t.Error("prefixed triple missing")
	}
}

func TestParseSparqlStylePrefix(t *testing.T) {
	g := mustParse(t, `
PREFIX ex: <http://e/>
ex:s ex:p ex:o .
`)
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestParseAKeyword(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:apple a ex:Fruit .
`)
	if !g.IsA(rdf.NewIRI("http://e/apple"), rdf.NewIRI("http://e/Fruit")) {
		t.Error("'a' keyword not expanded to rdf:type")
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p ex:o1 , ex:o2 ;
     ex:q ex:o3 .
`)
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	if len(g.Objects(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"))) != 2 {
		t.Error("object list not parsed")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p ex:o ; .
`)
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestParseLiterals(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:plain "hello" ;
     ex:lang "bonjour"@fr ;
     ex:typed "5"^^xsd:integer ;
     ex:typedIRI "x"^^<http://e/dt> ;
     ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.14 ;
     ex:dbl 1.0e3 ;
     ex:t true ;
     ex:f false ;
     ex:esc "tab\there\nand \"quotes\"" ;
     ex:uni "é" .
`)
	s := rdf.NewIRI("http://e/s")
	ex := func(l string) rdf.Term { return rdf.NewIRI("http://e/" + l) }
	checks := []struct {
		pred string
		want rdf.Term
	}{
		{"plain", rdf.NewLiteral("hello")},
		{"lang", rdf.NewLangLiteral("bonjour", "fr")},
		{"typed", rdf.NewTypedLiteral("5", rdf.XSDInteger)},
		{"typedIRI", rdf.NewTypedLiteral("x", "http://e/dt")},
		{"int", rdf.NewTypedLiteral("42", rdf.XSDInteger)},
		{"neg", rdf.NewTypedLiteral("-7", rdf.XSDInteger)},
		{"dec", rdf.NewTypedLiteral("3.14", rdf.XSDDecimal)},
		{"dbl", rdf.NewTypedLiteral("1.0e3", rdf.XSDDouble)},
		{"t", rdf.NewBool(true)},
		{"f", rdf.NewBool(false)},
		{"esc", rdf.NewLiteral("tab\there\nand \"quotes\"")},
		{"uni", rdf.NewLiteral("é")},
	}
	for _, c := range checks {
		if !g.Has(s, ex(c.pred), c.want) {
			t.Errorf("missing %s -> %v; have %v", c.pred, c.want, g.Objects(s, ex(c.pred)))
		}
	}
}

func TestParseLongStrings(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p """line1
line2 "inner" quotes""" .
`)
	want := rdf.NewLiteral("line1\nline2 \"inner\" quotes")
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), want) {
		t.Errorf("long string mismatch: %v", g.Triples())
	}
}

func TestParseBlankNodes(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
_:b1 ex:p ex:o .
ex:s ex:q _:b1 .
`)
	b := rdf.NewBlank("b1")
	if !g.Has(b, rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o")) {
		t.Error("labeled blank subject missing")
	}
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/q"), b) {
		t.Error("labeled blank object missing")
	}
}

func TestParseAnonymousBlankNode(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p [ ex:q ex:o ; ex:r "v" ] .
`)
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	objs := g.Objects(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"))
	if len(objs) != 1 || !objs[0].IsBlank() {
		t.Fatalf("expected blank object, got %v", objs)
	}
	if !g.Has(objs[0], rdf.NewIRI("http://e/q"), rdf.NewIRI("http://e/o")) {
		t.Error("nested property missing")
	}
}

func TestParseBlankSubjectPropertyList(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
[ ex:p ex:o ] ex:q ex:r .
[ ex:only ex:inner ] .
`)
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
}

func TestParseCollection(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p ( ex:a ex:b ex:c ) .
ex:s ex:empty ( ) .
`)
	head := g.FirstObject(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"))
	members, ok := g.ReadList(head)
	if !ok || len(members) != 3 {
		t.Fatalf("collection = %v ok=%v", members, ok)
	}
	if members[0] != rdf.NewIRI("http://e/a") || members[2] != rdf.NewIRI("http://e/c") {
		t.Errorf("collection order wrong: %v", members)
	}
	if g.FirstObject(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/empty")) != rdf.NilIRI {
		t.Error("empty collection should be rdf:nil")
	}
}

func TestParseBaseResolution(t *testing.T) {
	g := mustParse(t, `
@base <http://example.org/onto> .
<#s> <#p> <#o> .
`)
	if !g.Has(rdf.NewIRI("http://example.org/onto#s"),
		rdf.NewIRI("http://example.org/onto#p"),
		rdf.NewIRI("http://example.org/onto#o")) {
		t.Errorf("base resolution failed: %v", g.Triples())
	}
}

func TestParseComments(t *testing.T) {
	g := mustParse(t, `
# leading comment
@prefix ex: <http://e/> . # trailing
ex:s ex:p ex:o . # done
# end
`)
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unterminated iri", `<http://e/s <http://e/p> <http://e/o> .`},
		{"unbound prefix", `ex:s ex:p ex:o .`},
		{"missing dot", `<http://e/s> <http://e/p> <http://e/o>`},
		{"unterminated string", `<http://e/s> <http://e/p> "abc .`},
		{"bad escape", `<http://e/s> <http://e/p> "a\xb" .`},
		{"newline in short string", "<http://e/s> <http://e/p> \"a\nb\" ."},
		{"literal subject", `"lit" <http://e/p> <http://e/o> .`},
		{"empty blank label", `_: <http://e/p> <http://e/o> .`},
		{"unknown directive", `@foo <http://e/> .`},
		{"unterminated collection", `<http://e/s> <http://e/p> ( <http://e/a> .`},
		{"bad hex escape", `<http://e/s> <http://e/p> "\uZZZZ" .`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("expected error for %q", tc.src)
			} else if _, ok := err.(*ParseError); !ok {
				t.Errorf("error should be *ParseError, got %T", err)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("<http://e/s> <http://e/p>\n@@@ .")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("Error() should mention line: %s", pe.Error())
	}
}

func TestWriteRoundTripFixed(t *testing.T) {
	src := `
@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s a ex:Class ;
    ex:p "lit", "fr"@fr, 5, 2.5, true ;
    ex:q <http://other/iri> .
_:b ex:inner ex:s .
`
	g := mustParse(t, src)
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, sb.String())
	}
	if !store.Isomorphic(g, g2) {
		t.Errorf("round trip not isomorphic.\noriginal:\n%v\nreparsed:\n%v", g.Triples(), g2.Triples())
	}
}

func TestWriteNTriples(t *testing.T) {
	g := store.New()
	g.Add(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewLiteral("o"))
	var sb strings.Builder
	if err := WriteNTriples(&sb, g); err != nil {
		t.Fatal(err)
	}
	want := "<http://e/s> <http://e/p> \"o\" .\n"
	if sb.String() != want {
		t.Errorf("NTriples = %q, want %q", sb.String(), want)
	}
	// N-Triples output must be parseable by the Turtle parser.
	g2, err := Parse(sb.String())
	if err != nil || !store.Isomorphic(g, g2) {
		t.Errorf("NTriples round trip failed: %v", err)
	}
}

// Property test: random graphs round-trip through Turtle serialization
// modulo blank node renaming.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iris := []rdf.Term{
		rdf.NewIRI("http://e/a"), rdf.NewIRI("http://e/b"),
		rdf.NewIRI("http://e/c"), rdf.NewIRI(rdf.FEONS + "X"),
	}
	randTerm := func(allowLit, allowBlank bool) rdf.Term {
		switch rng.Intn(5) {
		case 0:
			if allowBlank {
				return rdf.NewBlank("n" + string(rune('a'+rng.Intn(3))))
			}
			return iris[rng.Intn(len(iris))]
		case 1:
			if allowLit {
				switch rng.Intn(4) {
				case 0:
					return rdf.NewLiteral("v" + string(rune('a'+rng.Intn(5))))
				case 1:
					return rdf.NewInt(int64(rng.Intn(100)))
				case 2:
					return rdf.NewLangLiteral("x", "en")
				default:
					return rdf.NewBool(rng.Intn(2) == 0)
				}
			}
			return iris[rng.Intn(len(iris))]
		default:
			return iris[rng.Intn(len(iris))]
		}
	}
	for trial := 0; trial < 100; trial++ {
		g := store.New()
		for i := 0; i < 1+rng.Intn(15); i++ {
			g.Add(randTerm(false, true), iris[rng.Intn(len(iris))], randTerm(true, true))
		}
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		g2, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, sb.String())
		}
		if !store.Isomorphic(g, g2) {
			t.Fatalf("trial %d: not isomorphic\noriginal: %v\nreparsed: %v\nserialized:\n%s",
				trial, g.Triples(), g2.Triples(), sb.String())
		}
	}
}

func TestParseIntoPreservesExisting(t *testing.T) {
	g := store.New()
	g.Add(rdf.NewIRI("http://e/pre"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	if err := ParseInto(g, `<http://e/s> <http://e/p> <http://e/o> .`); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d, want 2", g.Len())
	}
}

func TestParseDecimalPoint(t *testing.T) {
	// A '.' that terminates a statement must not be eaten by a number.
	g := mustParse(t, `<http://e/s> <http://e/p> 5 .`)
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewInt(5)) {
		t.Errorf("integer-then-dot parse failed: %v", g.Triples())
	}
}

func TestParseQNameWithDots(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:a.b ex:p ex:o .
`)
	if !g.Has(rdf.NewIRI("http://e/a.b"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o")) {
		t.Errorf("dotted local name failed: %v", g.Triples())
	}
}
