package rdf

import "testing"

func TestNamespacesExpandShrink(t *testing.T) {
	ns := StandardNamespaces()
	iri, ok := ns.Expand("feo:Characteristic")
	if !ok || iri != FEONS+"Characteristic" {
		t.Fatalf("Expand = (%q,%v)", iri, ok)
	}
	q, ok := ns.Shrink(iri)
	if !ok || q != "feo:Characteristic" {
		t.Fatalf("Shrink = (%q,%v)", q, ok)
	}
}

func TestExpandUnboundPrefix(t *testing.T) {
	ns := NewNamespaces()
	if _, ok := ns.Expand("nope:x"); ok {
		t.Error("unbound prefix must not expand")
	}
	if _, ok := ns.Expand("noColon"); ok {
		t.Error("name without colon must not expand")
	}
}

func TestMustExpandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExpand should panic on unbound prefix")
		}
	}()
	NewNamespaces().MustExpand("nope:x")
}

func TestShrinkLongestMatch(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("a", "http://e/")
	ns.Bind("b", "http://e/sub/")
	q, ok := ns.Shrink("http://e/sub/x")
	if !ok || q != "b:x" {
		t.Errorf("Shrink = (%q,%v), want b:x via longest namespace", q, ok)
	}
}

func TestShrinkRejectsStructuredLocal(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("e", "http://e/")
	if _, ok := ns.Shrink("http://e/a/b"); ok {
		t.Error("local name containing '/' must not shrink")
	}
	if _, ok := ns.Shrink("http://e/"); ok {
		t.Error("empty local name must not shrink")
	}
}

func TestBindReplacesPrevious(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("p", "http://one/")
	ns.Bind("p", "http://two/")
	if iri, _ := ns.IRIFor("p"); iri != "http://two/" {
		t.Errorf("rebind: IRIFor = %q", iri)
	}
	if _, ok := ns.Shrink("http://one/x"); ok {
		t.Error("old namespace must be forgotten after rebind")
	}
}

func TestResolveRelative(t *testing.T) {
	ns := NewNamespaces()
	ns.SetBase("http://example.org/onto")
	for _, tc := range []struct{ in, want string }{
		{"http://abs/x", "http://abs/x"},
		{"#frag", "http://example.org/onto#frag"},
		{"rel", "http://example.org/onto/rel"},
		{"urn:x", "urn:x"},
	} {
		if got := ns.Resolve(tc.in); got != tc.want {
			t.Errorf("Resolve(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	ns.SetBase("http://example.org/dir/")
	if got := ns.Resolve("leaf"); got != "http://example.org/dir/leaf" {
		t.Errorf("Resolve against slash base = %q", got)
	}
	ns.SetBase("http://example.org/page#frag")
	if got := ns.Resolve("#other"); got != "http://example.org/page#other" {
		t.Errorf("Resolve fragment against fragmented base = %q", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	ns := NewNamespaces()
	ns.Bind("a", "http://a/")
	ns.SetBase("http://base/")
	c := ns.Clone()
	c.Bind("b", "http://b/")
	if _, ok := ns.Expand("b:x"); ok {
		t.Error("binding on clone leaked into original")
	}
	if _, ok := c.Expand("a:x"); !ok {
		t.Error("clone lost original binding")
	}
	if c.Base() != "http://base/" {
		t.Error("clone lost base")
	}
}

func TestNilReceiverSafety(t *testing.T) {
	var ns *Namespaces
	if _, ok := ns.Expand("a:x"); ok {
		t.Error("nil Expand should fail")
	}
	if _, ok := ns.Shrink("http://a/x"); ok {
		t.Error("nil Shrink should fail")
	}
	if ns.Base() != "" {
		t.Error("nil Base should be empty")
	}
	if got := ns.Resolve("x"); got != "x" {
		t.Error("nil Resolve should pass through")
	}
	if ns.Prefixes() != nil {
		t.Error("nil Prefixes should be nil")
	}
}

func TestStandardNamespacesComplete(t *testing.T) {
	ns := StandardNamespaces()
	for _, p := range []string{"rdf", "rdfs", "owl", "xsd", "eo", "feo", "food", "kg"} {
		if _, ok := ns.IRIFor(p); !ok {
			t.Errorf("standard prefix %q missing", p)
		}
	}
	if len(ns.Prefixes()) != 8 {
		t.Errorf("want 8 standard prefixes, got %d", len(ns.Prefixes()))
	}
}
