package rdf

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		val  string
	}{
		{"iri", NewIRI("http://example.org/a"), KindIRI, "http://example.org/a"},
		{"blank", NewBlank("b1"), KindBlank, "b1"},
		{"plain literal", NewLiteral("hello"), KindLiteral, "hello"},
		{"typed literal", NewTypedLiteral("5", XSDInteger), KindLiteral, "5"},
		{"lang literal", NewLangLiteral("hallo", "DE"), KindLiteral, "hallo"},
		{"bool true", NewBool(true), KindLiteral, "true"},
		{"bool false", NewBool(false), KindLiteral, "false"},
		{"int", NewInt(-42), KindLiteral, "-42"},
		{"float", NewFloat(2.5), KindLiteral, "2.5"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Errorf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if tc.term.Value != tc.val {
				t.Errorf("value = %q, want %q", tc.term.Value, tc.val)
			}
		})
	}
}

func TestLangLiteralNormalizesTag(t *testing.T) {
	lit := NewLangLiteral("x", "EN-us")
	if lit.Lang != "en-us" {
		t.Errorf("lang = %q, want lowercased %q", lit.Lang, "en-us")
	}
	if lit.Datatype != RDFLangString {
		t.Errorf("datatype = %q, want rdf:langString", lit.Datatype)
	}
}

func TestTermPredicates(t *testing.T) {
	iri, blank, lit := NewIRI("x"), NewBlank("b"), NewLiteral("l")
	var zero Term
	if !iri.IsIRI() || iri.IsBlank() || iri.IsLiteral() {
		t.Error("IRI predicates wrong")
	}
	if !blank.IsBlank() || blank.IsIRI() || blank.IsLiteral() {
		t.Error("blank predicates wrong")
	}
	if !lit.IsLiteral() || lit.IsIRI() || lit.IsBlank() {
		t.Error("literal predicates wrong")
	}
	if zero.IsValid() {
		t.Error("zero Term must be invalid")
	}
	if !iri.IsValid() || !blank.IsValid() || !lit.IsValid() {
		t.Error("constructed terms must be valid")
	}
}

func TestTermEquality(t *testing.T) {
	if NewIRI("a") != NewIRI("a") {
		t.Error("identical IRIs must compare equal")
	}
	if NewIRI("a") == NewLiteral("a") {
		t.Error("IRI and literal with same value must differ")
	}
	if NewTypedLiteral("1", XSDInteger) == NewTypedLiteral("1", XSDString) {
		t.Error("literals with different datatypes must differ")
	}
	if NewLangLiteral("a", "en") == NewLangLiteral("a", "fr") {
		t.Error("literals with different language tags must differ")
	}
}

func TestBoolAccessor(t *testing.T) {
	for _, tc := range []struct {
		term Term
		want bool
		ok   bool
	}{
		{NewBool(true), true, true},
		{NewBool(false), false, true},
		{NewTypedLiteral("1", XSDBoolean), true, true},
		{NewTypedLiteral("0", XSDBoolean), false, true},
		{NewTypedLiteral("yes", XSDBoolean), false, false},
		{NewLiteral("true"), false, false},
		{NewIRI("true"), false, false},
	} {
		got, ok := tc.term.Bool()
		if got != tc.want || ok != tc.ok {
			t.Errorf("%v.Bool() = (%v,%v), want (%v,%v)", tc.term, got, ok, tc.want, tc.ok)
		}
	}
}

func TestIntAndFloatAccessors(t *testing.T) {
	if v, ok := NewInt(7).Int(); !ok || v != 7 {
		t.Errorf("Int() = (%d,%v), want (7,true)", v, ok)
	}
	if _, ok := NewLiteral("7").Int(); ok {
		t.Error("string literal must not parse as Int")
	}
	if v, ok := NewFloat(1.5).Float(); !ok || v != 1.5 {
		t.Errorf("Float() = (%g,%v), want (1.5,true)", v, ok)
	}
	if v, ok := NewInt(3).Float(); !ok || v != 3 {
		t.Errorf("integer literal as Float = (%g,%v), want (3,true)", v, ok)
	}
	if v, ok := NewTypedLiteral("2.25", XSDDecimal).Float(); !ok || v != 2.25 {
		t.Errorf("decimal literal Float = (%g,%v)", v, ok)
	}
	if _, ok := NewTypedLiteral("abc", XSDInteger).Int(); ok {
		t.Error("malformed integer must not parse")
	}
}

func TestTermString(t *testing.T) {
	for _, tc := range []struct {
		term Term
		want string
	}{
		{NewIRI("http://e/a"), "<http://e/a>"},
		{NewBlank("x"), "_:x"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewInt(5), `"5"^^<` + XSDInteger + `>`},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{Term{}, "<invalid>"},
	} {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String() = %s, want %s", got, tc.want)
		}
	}
}

func TestCompactUsesNamespaces(t *testing.T) {
	ns := StandardNamespaces()
	if got := NewIRI(FEONS + "Characteristic").Compact(ns); got != "feo:Characteristic" {
		t.Errorf("Compact = %q, want feo:Characteristic", got)
	}
	if got := NewIRI("http://unknown.example/x").Compact(ns); got != "<http://unknown.example/x>" {
		t.Errorf("Compact fallback = %q", got)
	}
	if got := NewInt(5).Compact(ns); got != `"5"^^xsd:integer` {
		t.Errorf("literal Compact = %q", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	terms := []Term{
		NewLiteral("z"), NewIRI("a"), NewBlank("m"),
		NewInt(10), NewInt(2), NewIRI("b"), NewLiteral("a"),
	}
	sort.Slice(terms, func(i, j int) bool { return Compare(terms[i], terms[j]) < 0 })
	// Blank < IRI < literal; numerics by value.
	if !terms[0].IsBlank() {
		t.Errorf("first should be blank, got %v", terms[0])
	}
	if !terms[1].IsIRI() || terms[1].Value != "a" {
		t.Errorf("second should be IRI a, got %v", terms[1])
	}
	var i2, i10 int
	for i, tm := range terms {
		if v, ok := tm.Int(); ok {
			if v == 2 {
				i2 = i
			} else if v == 10 {
				i10 = i
			}
		}
	}
	if i2 > i10 {
		t.Error("numeric literals must order by value (2 before 10)")
	}
}

func TestCompareProperties(t *testing.T) {
	gen := func(v string, kind uint8) Term {
		switch kind % 3 {
		case 0:
			return NewIRI(v)
		case 1:
			return NewBlank(v)
		default:
			return NewLiteral(v)
		}
	}
	antisym := func(a, b string, k1, k2 uint8) bool {
		x, y := gen(a, k1), gen(b, k2)
		return Compare(x, y) == -Compare(y, x)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("Compare not antisymmetric: %v", err)
	}
	reflexive := func(a string, k uint8) bool {
		x := gen(a, k)
		return Compare(x, x) == 0
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("Compare not reflexive: %v", err)
	}
}

func TestQuoteLiteralEscapes(t *testing.T) {
	in := "line1\nline2\t\"quoted\"\\slash\rret"
	out := QuoteLiteral(in)
	for _, forbidden := range []string{"\n", "\t", "\r"} {
		if strings.Contains(out, forbidden) {
			t.Errorf("QuoteLiteral left raw %q in output %q", forbidden, out)
		}
	}
	if !strings.HasPrefix(out, `"`) || !strings.HasSuffix(out, `"`) {
		t.Errorf("QuoteLiteral output not quoted: %q", out)
	}
}

func TestTripleValid(t *testing.T) {
	s, p, o := NewIRI("s"), NewIRI("p"), NewLiteral("o")
	for _, tc := range []struct {
		name string
		tr   Triple
		want bool
	}{
		{"iri spo", NewTriple(s, p, o), true},
		{"blank subject", NewTriple(NewBlank("b"), p, o), true},
		{"literal subject", NewTriple(o, p, o), false},
		{"blank predicate", NewTriple(s, NewBlank("b"), o), false},
		{"literal predicate", NewTriple(s, o, o), false},
		{"invalid object", NewTriple(s, p, Term{}), false},
		{"blank object", NewTriple(s, p, NewBlank("b")), true},
	} {
		if got := tc.tr.Valid(); got != tc.want {
			t.Errorf("%s: Valid() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://e/s"), NewIRI("http://e/p"), NewLiteral("o"))
	want := `<http://e/s> <http://e/p> "o" .`
	if got := tr.String(); got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
}

func TestIsNumericDatatype(t *testing.T) {
	for _, dt := range []string{XSDInteger, XSDDecimal, XSDFloat, XSDDouble, XSDInt, XSDLong} {
		if !IsNumericDatatype(dt) {
			t.Errorf("%s should be numeric", dt)
		}
	}
	for _, dt := range []string{XSDString, XSDBoolean, XSDDate, ""} {
		if IsNumericDatatype(dt) {
			t.Errorf("%s should not be numeric", dt)
		}
	}
}
