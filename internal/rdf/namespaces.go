package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Namespaces maps prefixes to namespace IRIs and back. It powers QName
// expansion in the Turtle parser and SPARQL parser, and IRI compaction in
// serializers and human-facing output.
//
// The zero value is empty and ready to use; methods on a nil receiver behave
// as if the mapping were empty.
type Namespaces struct {
	prefixToIRI map[string]string
	iriToPrefix map[string]string
	base        string
}

// NewNamespaces returns an empty prefix mapping.
func NewNamespaces() *Namespaces {
	return &Namespaces{
		prefixToIRI: make(map[string]string),
		iriToPrefix: make(map[string]string),
	}
}

// StandardNamespaces returns a mapping preloaded with the prefixes used
// throughout this repository: rdf, rdfs, owl, xsd, eo, feo, food, kg.
func StandardNamespaces() *Namespaces {
	ns := NewNamespaces()
	ns.Bind("rdf", RDFNS)
	ns.Bind("rdfs", RDFSNS)
	ns.Bind("owl", OWLNS)
	ns.Bind("xsd", XSDNS)
	ns.Bind("eo", EONS)
	ns.Bind("feo", FEONS)
	ns.Bind("food", FoodNS)
	ns.Bind("kg", KGNS)
	return ns
}

// Bind associates prefix with iri, replacing any previous binding for either.
func (ns *Namespaces) Bind(prefix, iri string) {
	if ns.prefixToIRI == nil {
		ns.prefixToIRI = make(map[string]string)
		ns.iriToPrefix = make(map[string]string)
	}
	if old, ok := ns.prefixToIRI[prefix]; ok {
		delete(ns.iriToPrefix, old)
	}
	ns.prefixToIRI[prefix] = iri
	ns.iriToPrefix[iri] = prefix
}

// SetBase sets the base IRI used to resolve relative IRIs.
func (ns *Namespaces) SetBase(base string) { ns.base = base }

// Base returns the base IRI, or "" if none is set.
func (ns *Namespaces) Base() string {
	if ns == nil {
		return ""
	}
	return ns.base
}

// Resolve resolves a possibly-relative IRI against the base IRI. It performs
// simple reference resolution sufficient for ontology documents (absolute
// IRIs pass through; relative references are appended to the base).
func (ns *Namespaces) Resolve(iri string) string {
	if ns == nil || ns.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") || strings.HasPrefix(iri, "mailto:") {
		return iri
	}
	if strings.HasPrefix(iri, "#") {
		if i := strings.IndexByte(ns.base, '#'); i >= 0 {
			return ns.base[:i] + iri
		}
		return ns.base + iri
	}
	if strings.HasSuffix(ns.base, "/") || strings.HasSuffix(ns.base, "#") {
		return ns.base + iri
	}
	return ns.base + "/" + iri
}

// Expand turns a QName such as "feo:Characteristic" into a full IRI.
// It returns false when the prefix is not bound.
func (ns *Namespaces) Expand(qname string) (string, bool) {
	if ns == nil {
		return "", false
	}
	i := strings.IndexByte(qname, ':')
	if i < 0 {
		return "", false
	}
	base, ok := ns.prefixToIRI[qname[:i]]
	if !ok {
		return "", false
	}
	return base + qname[i+1:], true
}

// MustExpand is Expand that panics on unbound prefixes. It is intended for
// package initialization of well-known vocabularies, where an unbound prefix
// is a programming error.
func (ns *Namespaces) MustExpand(qname string) string {
	iri, ok := ns.Expand(qname)
	if !ok {
		panic(fmt.Sprintf("rdf: cannot expand QName %q: prefix not bound", qname))
	}
	return iri
}

// Shrink compacts a full IRI to a QName using the longest matching namespace.
// It returns false when no bound namespace is a prefix of the IRI or when the
// local part would not be a valid QName local name.
func (ns *Namespaces) Shrink(iri string) (string, bool) {
	if ns == nil {
		return "", false
	}
	best, bestPrefix := "", ""
	// Longest namespace wins; equal-length ties break lexicographically so
	// the chosen QName is independent of map iteration order.
	//feo:unordered
	for nsIRI, prefix := range ns.iriToPrefix {
		if !strings.HasPrefix(iri, nsIRI) {
			continue
		}
		if len(nsIRI) > len(best) || (len(nsIRI) == len(best) && nsIRI < best) {
			best, bestPrefix = nsIRI, prefix
		}
	}
	if best == "" {
		return "", false
	}
	local := iri[len(best):]
	if local == "" || strings.ContainsAny(local, "/#:") {
		return "", false
	}
	return bestPrefix + ":" + local, true
}

// Prefixes returns the bound prefixes in sorted order.
func (ns *Namespaces) Prefixes() []string {
	if ns == nil {
		return nil
	}
	out := make([]string, 0, len(ns.prefixToIRI))
	for p := range ns.prefixToIRI {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// IRIFor returns the namespace IRI bound to prefix.
func (ns *Namespaces) IRIFor(prefix string) (string, bool) {
	if ns == nil {
		return "", false
	}
	iri, ok := ns.prefixToIRI[prefix]
	return iri, ok
}

// Clone returns an independent copy of the mapping.
func (ns *Namespaces) Clone() *Namespaces {
	out := NewNamespaces()
	if ns == nil {
		return out
	}
	//feo:unordered
	for p, iri := range ns.prefixToIRI {
		out.Bind(p, iri)
	}
	out.base = ns.base
	return out
}
