package rdf

// Standard namespace prefixes used across the repository.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"

	// EONS is the Explanation Ontology namespace the paper extends.
	EONS = "https://purl.org/heals/eo#"
	// FEONS is the Food Explanation Ontology namespace (the paper's contribution).
	FEONS = "https://purl.org/heals/feo#"
	// FoodNS is the "What To Make" food ontology namespace FEO builds on.
	FoodNS = "http://purl.org/heals/food/"
	// KGNS is the namespace for synthetic FoodKG instance data.
	KGNS = "https://purl.org/heals/foodkg/"
)

// RDF vocabulary.
const (
	RDFType      = RDFNS + "type"
	RDFProperty  = RDFNS + "Property"
	RDFFirst     = RDFNS + "first"
	RDFRest      = RDFNS + "rest"
	RDFNil       = RDFNS + "nil"
	RDFLangStr   = RDFNS + "langString"
	RDFStatement = RDFNS + "Statement"
	RDFSubject   = RDFNS + "subject"
	RDFPredicate = RDFNS + "predicate"
	RDFObject    = RDFNS + "object"
)

// RDFLangString aliases the rdf:langString datatype IRI.
const RDFLangString = RDFLangStr

// RDFS vocabulary.
const (
	RDFSSubClassOf    = RDFSNS + "subClassOf"
	RDFSSubPropertyOf = RDFSNS + "subPropertyOf"
	RDFSDomain        = RDFSNS + "domain"
	RDFSRange         = RDFSNS + "range"
	RDFSLabel         = RDFSNS + "label"
	RDFSComment       = RDFSNS + "comment"
	RDFSClass         = RDFSNS + "Class"
	RDFSResource      = RDFSNS + "Resource"
	RDFSSeeAlso       = RDFSNS + "seeAlso"
	RDFSIsDefinedBy   = RDFSNS + "isDefinedBy"
)

// OWL vocabulary (the subset the OWL RL reasoner understands).
const (
	OWLClass                   = OWLNS + "Class"
	OWLThing                   = OWLNS + "Thing"
	OWLNothing                 = OWLNS + "Nothing"
	OWLObjectProperty          = OWLNS + "ObjectProperty"
	OWLDatatypeProperty        = OWLNS + "DatatypeProperty"
	OWLAnnotationProperty      = OWLNS + "AnnotationProperty"
	OWLOntology                = OWLNS + "Ontology"
	OWLNamedIndividual         = OWLNS + "NamedIndividual"
	OWLTransitiveProperty      = OWLNS + "TransitiveProperty"
	OWLSymmetricProperty       = OWLNS + "SymmetricProperty"
	OWLFunctionalProperty      = OWLNS + "FunctionalProperty"
	OWLInverseFunctional       = OWLNS + "InverseFunctionalProperty"
	OWLInverseOf               = OWLNS + "inverseOf"
	OWLEquivalentClass         = OWLNS + "equivalentClass"
	OWLEquivalentProperty      = OWLNS + "equivalentProperty"
	OWLDisjointWith            = OWLNS + "disjointWith"
	OWLPropertyDisjointWith    = OWLNS + "propertyDisjointWith"
	OWLSameAs                  = OWLNS + "sameAs"
	OWLDifferentFrom           = OWLNS + "differentFrom"
	OWLIntersectionOf          = OWLNS + "intersectionOf"
	OWLUnionOf                 = OWLNS + "unionOf"
	OWLComplementOf            = OWLNS + "complementOf"
	OWLOneOf                   = OWLNS + "oneOf"
	OWLRestriction             = OWLNS + "Restriction"
	OWLOnProperty              = OWLNS + "onProperty"
	OWLSomeValuesFrom          = OWLNS + "someValuesFrom"
	OWLAllValuesFrom           = OWLNS + "allValuesFrom"
	OWLHasValue                = OWLNS + "hasValue"
	OWLImports                 = OWLNS + "imports"
	OWLVersionIRI              = OWLNS + "versionIRI"
	OWLPropertyChainAxiom      = OWLNS + "propertyChainAxiom"
	OWLIrreflexiveProperty     = OWLNS + "IrreflexiveProperty"
	OWLAsymmetricProperty      = OWLNS + "AsymmetricProperty"
	OWLReflexiveProperty       = OWLNS + "ReflexiveProperty"
	OWLNegativePropertyAssert  = OWLNS + "NegativePropertyAssertion"
	OWLSourceIndividual        = OWLNS + "sourceIndividual"
	OWLAssertionProperty       = OWLNS + "assertionProperty"
	OWLTargetIndividual        = OWLNS + "targetIndividual"
	OWLAllDisjointClasses      = OWLNS + "AllDisjointClasses"
	OWLMembers                 = OWLNS + "members"
	OWLMaxCardinality          = OWLNS + "maxCardinality"
	OWLMaxQualifiedCardinality = OWLNS + "maxQualifiedCardinality"
)

// XSD datatypes.
const (
	XSDString             = XSDNS + "string"
	XSDBoolean            = XSDNS + "boolean"
	XSDInteger            = XSDNS + "integer"
	XSDDecimal            = XSDNS + "decimal"
	XSDFloat              = XSDNS + "float"
	XSDDouble             = XSDNS + "double"
	XSDInt                = XSDNS + "int"
	XSDLong               = XSDNS + "long"
	XSDShort              = XSDNS + "short"
	XSDByte               = XSDNS + "byte"
	XSDDate               = XSDNS + "date"
	XSDDateTime           = XSDNS + "dateTime"
	XSDTime               = XSDNS + "time"
	XSDAnyURI             = XSDNS + "anyURI"
	XSDNonNegativeInteger = XSDNS + "nonNegativeInteger"
	XSDNonPositiveInteger = XSDNS + "nonPositiveInteger"
	XSDPositiveInteger    = XSDNS + "positiveInteger"
	XSDNegativeInteger    = XSDNS + "negativeInteger"
	XSDUnsignedInt        = XSDNS + "unsignedInt"
	XSDUnsignedLong       = XSDNS + "unsignedLong"
)

// Frequently used terms, pre-built to avoid re-allocating in hot paths.
var (
	TypeIRI          = NewIRI(RDFType)
	SubClassOfIRI    = NewIRI(RDFSSubClassOf)
	SubPropertyOfIRI = NewIRI(RDFSSubPropertyOf)
	DomainIRI        = NewIRI(RDFSDomain)
	RangeIRI         = NewIRI(RDFSRange)
	LabelIRI         = NewIRI(RDFSLabel)
	CommentIRI       = NewIRI(RDFSComment)
	SameAsIRI        = NewIRI(OWLSameAs)
	InverseOfIRI     = NewIRI(OWLInverseOf)
	EquivClassIRI    = NewIRI(OWLEquivalentClass)
	EquivPropIRI     = NewIRI(OWLEquivalentProperty)
	FirstIRI         = NewIRI(RDFFirst)
	RestIRI          = NewIRI(RDFRest)
	NilIRI           = NewIRI(RDFNil)
	ThingIRI         = NewIRI(OWLThing)
	NothingIRI       = NewIRI(OWLNothing)
	ClassIRI         = NewIRI(OWLClass)
	TrueLiteral      = NewBool(true)
	FalseLiteral     = NewBool(false)
)
