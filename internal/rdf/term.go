// Package rdf implements the RDF 1.1 abstract data model: IRIs, literals,
// blank nodes, triples, and the standard RDF/RDFS/OWL/XSD vocabularies.
//
// Terms are small comparable value types so they can be used directly as map
// keys throughout the store, reasoner, and SPARQL engine. The package is the
// foundation of the FEO reproduction: every other subsystem (Turtle parsing,
// the triple store, the OWL RL reasoner, the SPARQL evaluator, and the
// explanation engine) exchanges data as rdf.Term and rdf.Triple values.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms plus the zero Term.
type TermKind uint8

// Term kinds. KindInvalid is the zero value and marks an absent term (for
// example, an unbound variable in a SPARQL solution).
const (
	KindInvalid TermKind = iota
	KindIRI
	KindBlank
	KindLiteral
)

// String returns a human-readable kind name.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindBlank:
		return "BlankNode"
	case KindLiteral:
		return "Literal"
	default:
		return "Invalid"
	}
}

// Term is an RDF term: an IRI, a blank node, or a literal.
//
// The zero Term is invalid and usable as an "absent" sentinel. Term is
// comparable; two Terms are the same RDF term exactly when the struct values
// are equal (per RDF 1.1 term equality: literals compare by lexical form,
// datatype, and language tag).
type Term struct {
	// Kind discriminates how the remaining fields are interpreted.
	Kind TermKind
	// Value holds the IRI string, the blank node label (without "_:"), or
	// the literal lexical form.
	Value string
	// Datatype holds the datatype IRI for literals. Plain literals use
	// xsd:string per RDF 1.1; language-tagged literals use rdf:langString.
	Datatype string
	// Lang holds the language tag for language-tagged literals.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewBlank returns a blank node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewLiteral returns a plain string literal (datatype xsd:string).
func NewLiteral(lex string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: XSDString}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal (datatype rdf:langString).
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: RDFLangString, Lang: strings.ToLower(lang)}
}

// NewBool returns an xsd:boolean literal.
func NewBool(b bool) Term {
	if b {
		return Term{Kind: KindLiteral, Value: "true", Datatype: XSDBoolean}
	}
	return Term{Kind: KindLiteral, Value: "false", Datatype: XSDBoolean}
}

// NewInt returns an xsd:integer literal.
func NewInt(i int64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatInt(i, 10), Datatype: XSDInteger}
}

// NewFloat returns an xsd:double literal.
func NewFloat(f float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(f, 'g', -1, 64), Datatype: XSDDouble}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsValid reports whether the term is one of the three RDF term kinds.
func (t Term) IsValid() bool { return t.Kind != KindInvalid }

// IsResource reports whether the term is an IRI or a blank node — the kinds
// allowed in triple subject position and required by many OWL rule guards.
// The store's dictionary exposes the same test by ID (Graph.IsResourceID)
// so hot paths can check it without decoding the term.
func (t Term) IsResource() bool { return t.Kind == KindIRI || t.Kind == KindBlank }

// Bool interprets the term as an xsd:boolean literal.
func (t Term) Bool() (bool, bool) {
	if t.Kind != KindLiteral || t.Datatype != XSDBoolean {
		return false, false
	}
	switch t.Value {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// Int interprets the term as an integer-valued literal.
func (t Term) Int() (int64, bool) {
	if t.Kind != KindLiteral || !isIntegerDatatype(t.Datatype) {
		return 0, false
	}
	i, err := strconv.ParseInt(t.Value, 10, 64)
	if err != nil {
		return 0, false
	}
	return i, true
}

// Float interprets the term as a numeric literal (integer, decimal, float,
// or double) and returns its value as float64.
func (t Term) Float() (float64, bool) {
	if t.Kind != KindLiteral || !IsNumericDatatype(t.Datatype) {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.Value, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// IsNumericDatatype reports whether dt is one of the XSD numeric datatypes
// the engine can compare and do arithmetic on.
func IsNumericDatatype(dt string) bool {
	switch dt {
	case XSDInteger, XSDDecimal, XSDFloat, XSDDouble, XSDInt, XSDLong,
		XSDShort, XSDByte, XSDNonNegativeInteger, XSDPositiveInteger,
		XSDNegativeInteger, XSDNonPositiveInteger, XSDUnsignedInt,
		XSDUnsignedLong:
		return true
	}
	return false
}

func isIntegerDatatype(dt string) bool {
	switch dt {
	case XSDInteger, XSDInt, XSDLong, XSDShort, XSDByte,
		XSDNonNegativeInteger, XSDPositiveInteger, XSDNegativeInteger,
		XSDNonPositiveInteger, XSDUnsignedInt, XSDUnsignedLong:
		return true
	}
	return false
}

// String renders the term in N-Triples-like concrete syntax. IRIs are wrapped
// in angle brackets, blank nodes are prefixed with "_:", and literals are
// quoted with their datatype or language tag.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		q := QuoteLiteral(t.Value)
		if t.Lang != "" {
			return q + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return q + "^^<" + t.Datatype + ">"
		}
		return q
	default:
		return "<invalid>"
	}
}

// Compact renders the term using the prefixes in ns, falling back to String.
// It is used for human-facing output (explanations, CLI tables, figures).
func (t Term) Compact(ns *Namespaces) string {
	switch t.Kind {
	case KindIRI:
		if ns != nil {
			if q, ok := ns.Shrink(t.Value); ok {
				return q
			}
		}
		return "<" + t.Value + ">"
	case KindLiteral:
		if t.Lang != "" {
			return QuoteLiteral(t.Value) + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			dt := t.Datatype
			if ns != nil {
				if q, ok := ns.Shrink(dt); ok {
					dt = q
				} else {
					dt = "<" + dt + ">"
				}
			}
			return QuoteLiteral(t.Value) + "^^" + dt
		}
		return QuoteLiteral(t.Value)
	default:
		return t.String()
	}
}

// QuoteLiteral returns lex as a double-quoted Turtle/N-Triples string with
// the required escape sequences applied.
func QuoteLiteral(lex string) string {
	var b strings.Builder
	b.Grow(len(lex) + 2)
	b.WriteByte('"')
	for _, r := range lex {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Compare imposes a total order on terms: invalid < blank < IRI < literal,
// then by value, datatype, and language. It is used by DISTINCT, ORDER BY,
// and deterministic serialization.
func Compare(a, b Term) int {
	if a.Kind != b.Kind {
		return int(kindOrder(a.Kind)) - int(kindOrder(b.Kind))
	}
	if a.Kind == KindLiteral {
		// Numeric literals order by value when both are numeric.
		if fa, ok := a.Float(); ok {
			if fb, ok2 := b.Float(); ok2 {
				switch {
				case fa < fb:
					return -1
				case fa > fb:
					return 1
				}
			}
		}
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Datatype, b.Datatype); c != 0 {
		return c
	}
	return strings.Compare(a.Lang, b.Lang)
}

func kindOrder(k TermKind) uint8 {
	switch k {
	case KindBlank:
		return 1
	case KindIRI:
		return 2
	case KindLiteral:
		return 3
	default:
		return 0
	}
}

// Triple is an RDF triple. It is comparable and usable as a map key.
type Triple struct {
	S, P, O Term
}

// NewTriple returns the triple (s, p, o).
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (terminated with " .").
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Valid reports whether the triple is well-formed per RDF 1.1: the subject
// is an IRI or blank node, the predicate is an IRI, and the object is any
// valid term.
func (t Triple) Valid() bool {
	if !t.S.IsResource() {
		return false
	}
	if !t.P.IsIRI() {
		return false
	}
	return t.O.IsValid()
}
