// Package core is the explanation engine — the paper's primary
// contribution operationalized. Given a question about a food
// recommendation, it asserts the question into the knowledge graph, runs
// the OWL RL reasoner to classify the ecosystem (exactly as the paper runs
// Pellet before querying), evaluates an explanation-type-specific SPARQL
// query, and renders the bindings as a natural-language explanation with
// full provenance.
//
// All nine literature-derived explanation types of the paper's Table I are
// implemented: the three the paper evaluates (contextual, contrastive,
// counterfactual — Listings 1-3) and the six it defers to future work
// (case-based, everyday, scientific, simulation-based, statistical,
// trace-based), built from the sketches in the paper's §VI.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/sparql"
	"repro/internal/store"
)

// ExplanationType enumerates the nine Table I explanation types.
type ExplanationType int

// The explanation types, in Table I order.
const (
	CaseBased ExplanationType = iota
	Contextual
	Contrastive
	Counterfactual
	Everyday
	Scientific
	SimulationBased
	Statistical
	TraceBased
)

var typeNames = [...]string{
	"case-based", "contextual", "contrastive", "counterfactual",
	"everyday", "scientific", "simulation-based", "statistical",
	"trace-based",
}

// String returns the lowercase type name used by the CLI.
func (t ExplanationType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("ExplanationType(%d)", int(t))
}

// ParseExplanationType maps a CLI name to a type.
func ParseExplanationType(s string) (ExplanationType, error) {
	for i, n := range typeNames {
		if n == s {
			return ExplanationType(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown explanation type %q", s)
}

// AllExplanationTypes lists every type in Table I order.
func AllExplanationTypes() []ExplanationType {
	out := make([]ExplanationType, len(typeNames))
	for i := range out {
		out[i] = ExplanationType(i)
	}
	return out
}

// ClassIRI returns the EO class for the explanation type.
func (t ExplanationType) ClassIRI() rdf.Term {
	switch t {
	case CaseBased:
		return ontology.EOCaseBasedExplanation
	case Contextual:
		return ontology.EOContextualExplanation
	case Contrastive:
		return ontology.EOContrastiveExplanation
	case Counterfactual:
		return ontology.EOCounterfactualExplanation
	case Everyday:
		return ontology.EOEverydayExplanation
	case Scientific:
		return ontology.EOScientificExplanation
	case SimulationBased:
		return ontology.EOSimulationBasedExplanation
	case Statistical:
		return ontology.EOStatisticalExplanation
	default:
		return ontology.EOTraceBasedExplanation
	}
}

// ExampleQuestion returns Table I's example user question for the type.
func (t ExplanationType) ExampleQuestion() string {
	switch t {
	case CaseBased:
		return "What results from other users recommend food A?"
	case Contextual:
		return "Why should I eat Food A?"
	case Contrastive:
		return "Why was Food A recommended over Food B?"
	case Counterfactual:
		return "What if we changed ingredient C?"
	case Everyday:
		return "What foods go together?"
	case Scientific:
		return "What literature recommends Food A?"
	case SimulationBased:
		return "What if I ate food A everyday?"
	case Statistical:
		return "What evidence from data suggests I follow diet D?"
	default:
		return "What steps led to recommendation E?"
	}
}

// Question is a user question about a recommendation.
type Question struct {
	// IRI optionally names a pre-asserted question individual (the CQ
	// datasets provide these); when zero the engine mints one.
	IRI rdf.Term
	// Type selects the explanation type to generate.
	Type ExplanationType
	// Primary is the main parameter (the recommended food, the changed
	// ingredient, the hypothetical condition, or the diet, depending on
	// type).
	Primary rdf.Term
	// Secondary is the contrast parameter for contrastive questions.
	Secondary rdf.Term
	// User is the asking user, when user context matters.
	User rdf.Term
	// Text is the free-form question text (kept for provenance).
	Text string
}

// Evidence is one unit of support for an explanation: the SPARQL bindings
// that produced it and the graph triples behind them.
type Evidence struct {
	Bindings sparql.Solution
	Triples  []rdf.Triple
	// Phrase is the rendered NL fragment for this evidence item.
	Phrase string
}

// Explanation is the engine's output.
type Explanation struct {
	Type     ExplanationType
	Question Question
	// IRI names the eo:Explanation individual asserted into the graph for
	// this explanation.
	IRI rdf.Term
	// Summary is the rendered natural-language explanation.
	Summary string
	// Evidence lists the supporting bindings in deterministic order.
	Evidence []Evidence
	// Query is the SPARQL text evaluated (empty for trace-based, which
	// reads the recommender trace instead).
	Query string
}

// Engine generates explanations over a materialized knowledge graph.
type Engine struct {
	g *store.Graph
	r *reasoner.Reasoner
	// coach is optional; it powers trace-based explanations.
	coach *healthcoach.Coach
	seq   int
	// dict is the graph's term dictionary the question bookkeeping was
	// built against. Graph.Clear swaps the dictionary, orphaning every
	// cached question IRI; syncQuestionState detects the swap and rebuilds.
	dict *store.TermDict
	// questionCache reuses minted question individuals for repeated asks,
	// keeping Explain idempotent on the graph. Keyed on the full question
	// identity including its free-form text, so asks that differ only in
	// phrasing each get their own individual (and exactly one rdfs:comment)
	// instead of piling comments onto a shared node.
	questionCache map[questionKey]rdf.Term
	// pending captures every graph mutation since the last
	// re-materialization — question/explanation assertions, session loads,
	// SPARQL updates, even direct Graph writes by the embedding
	// application — so Rematerialize can hand the reasoner an exact delta.
	pending *store.ChangeSet
}

type questionKey struct {
	typ                ExplanationType
	primary, secondary rdf.Term
	text               string
}

// NewEngine wraps a graph and its reasoner. The graph should contain the
// FEO TBox and instance data; the engine re-materializes (incrementally)
// after asserting new questions.
func NewEngine(g *store.Graph, r *reasoner.Reasoner) *Engine {
	if r == nil {
		r = reasoner.New(reasoner.Options{TraceDerivations: true})
		r.Materialize(g)
	}
	e := &Engine{g: g, r: r, dict: g.Dict(),
		questionCache: make(map[questionKey]rdf.Term),
		pending:       g.StartCapture()}
	e.restoreQuestionState()
	return e
}

// syncQuestionState rebuilds the minted-question bookkeeping after
// Graph.Clear replaced the term dictionary. The cached IRIs' triples died
// with the old graph, so reusing them would answer repeated questions with
// individuals absent from the graph, and the sequence counter would keep
// counting ghosts. Resetting and rescanning also keeps a live session's
// post-Clear behavior identical to a session recovered from the durability
// log, whose engine rebuilds this state from the replayed graph.
func (e *Engine) syncQuestionState() {
	if e.dict == e.g.Dict() {
		return
	}
	e.dict = e.g.Dict()
	e.seq = 0
	clear(e.questionCache)
	e.restoreQuestionState()
}

// restoreQuestionState rebuilds the minted-question bookkeeping from the
// graph, so an engine over a reloaded (durable) graph keeps Explain's
// invariants across restarts: the sequence counter resumes past every
// previously minted question IRI (never re-minting a colliding
// kg:question/qNNNN), and repeated asks of a question answered in an
// earlier process reuse its individual instead of asserting a duplicate.
// Only IRIs with the engine's own mint prefix participate; pre-asserted CQ
// question individuals are left alone exactly as in a fresh session.
func (e *Engine) restoreQuestionState() {
	const mintPrefix = "question/q"
	prefix := rdf.KGNS + mintPrefix
	for _, q := range e.g.InstancesOf(ontology.FEOFoodQuestion) {
		if q.Kind != rdf.KindIRI || !strings.HasPrefix(q.Value, prefix) {
			continue
		}
		n, err := strconv.Atoi(q.Value[len(prefix):])
		if err != nil || n <= 0 {
			continue
		}
		if n > e.seq {
			e.seq = n
		}
		typ, ok := e.questionType(q)
		if !ok {
			continue
		}
		key := questionKey{typ: typ}
		if p := e.g.FirstObject(q, ontology.FEOHasPrimaryParameter); p.IsValid() {
			key.primary = p
			key.secondary = e.g.FirstObject(q, ontology.FEOHasSecondaryParameter)
		} else {
			key.primary = e.g.FirstObject(q, ontology.FEOHasParameter)
		}
		if c := e.g.FirstObject(q, rdf.CommentIRI); c.IsValid() {
			key.text = c.Value
		}
		if _, exists := e.questionCache[key]; !exists {
			e.questionCache[key] = q
		}
	}
}

// questionType recovers the explanation type a minted question was asked
// with, from its asserted type classes (Table I order breaks ties).
func (e *Engine) questionType(q rdf.Term) (ExplanationType, bool) {
	for _, t := range AllExplanationTypes() {
		if e.g.Has(q, rdf.TypeIRI, t.ClassIRI()) {
			return t, true
		}
	}
	return 0, false
}

// Rematerialize brings the OWL RL closure up to date with every graph
// mutation since the previous run and re-arms change capture. When the
// mutations were pure additions (the serve-time common case: question
// assertions, INSERT DATA, document loads), the reasoner extends the
// closure incrementally in O(|delta closure|); removals, Clear, or
// mutations that bypassed capture fall back to the historical full re-run.
// Callers that mutate the graph directly may invoke it themselves; Explain
// and feo.Session call it automatically.
func (e *Engine) Rematerialize() reasoner.Stats {
	cs := e.pending
	e.pending = nil
	stats := e.r.MaterializeChanges(e.g, cs)
	e.pending = e.g.StartCapture()
	return stats
}

// SetCoach attaches a Health Coach recommender whose traces power
// trace-based explanations.
func (e *Engine) SetCoach(c *healthcoach.Coach) { e.coach = c }

// Graph exposes the underlying graph (read-mostly).
func (e *Engine) Graph() *store.Graph { return e.g }

// Reasoner exposes the attached reasoner (for proof inspection).
func (e *Engine) Reasoner() *reasoner.Reasoner { return e.r }

// Explain dispatches to the generator for q.Type, then asserts the
// generated explanation back into the graph as an eo:Explanation
// individual — FEO's core premise is that explanations are first-class,
// queryable semantic objects.
func (e *Engine) Explain(q Question) (*Explanation, error) {
	ex, err := e.generate(q)
	if err != nil {
		return nil, err
	}
	ex.IRI = e.assertExplanation(ex)
	return ex, nil
}

func (e *Engine) generate(q Question) (*Explanation, error) {
	if !q.Primary.IsValid() && q.Type != Everyday {
		return nil, fmt.Errorf("core: question needs a primary parameter")
	}
	e.ensureQuestion(&q)
	switch q.Type {
	case Contextual:
		return e.contextual(q)
	case Contrastive:
		return e.contrastive(q)
	case Counterfactual:
		return e.counterfactual(q)
	case CaseBased:
		return e.caseBased(q)
	case Everyday:
		return e.everyday(q)
	case Scientific:
		return e.scientific(q)
	case SimulationBased:
		return e.simulationBased(q)
	case Statistical:
		return e.statistical(q)
	case TraceBased:
		return e.traceBased(q)
	default:
		return nil, fmt.Errorf("core: unsupported explanation type %v", q.Type)
	}
}

// ensureQuestion asserts the question individual and parameters into the
// graph and re-materializes so parameter classification (feo:Parameter,
// eo:Fact/eo:Foil) reflects the question being asked. The
// re-materialization is incremental: the write-critical section costs
// O(closure of the few question triples), not O(|graph|).
func (e *Engine) ensureQuestion(q *Question) {
	e.syncQuestionState()
	if !q.IRI.IsValid() {
		key := questionKey{typ: q.Type, primary: q.Primary, secondary: q.Secondary, text: q.Text}
		if cached, ok := e.questionCache[key]; ok {
			q.IRI = cached
		} else {
			e.seq++
			q.IRI = rdf.NewIRI(rdf.KGNS + fmt.Sprintf("question/q%04d", e.seq))
			e.questionCache[key] = q.IRI
		}
	}
	added := false
	add := func(s, p, o rdf.Term) {
		if e.g.Add(s, p, o) {
			added = true
		}
	}
	add(q.IRI, rdf.TypeIRI, ontology.FEOFoodQuestion)
	add(q.IRI, rdf.TypeIRI, q.Type.ClassIRI())
	if q.Text != "" {
		add(q.IRI, rdf.CommentIRI, rdf.NewLiteral(q.Text))
	}
	if q.Primary.IsValid() {
		if q.Secondary.IsValid() {
			add(q.IRI, ontology.FEOHasPrimaryParameter, q.Primary)
			add(q.IRI, ontology.FEOHasSecondaryParameter, q.Secondary)
		} else {
			add(q.IRI, ontology.FEOHasParameter, q.Primary)
		}
	}
	if added {
		e.Rematerialize()
	}
}

// assertExplanation writes the explanation into the graph as an
// eo:Explanation individual: its type class, the question it addresses,
// the knowledge (evidence terms) it uses, and the rendered summary. Reuses
// one individual per (question, type) pair so repeated asks stay
// idempotent. The added triples land in the engine's pending change
// capture and are classified by the next (incremental) Rematerialize,
// matching the historical timing of the full re-run.
func (e *Engine) assertExplanation(ex *Explanation) rdf.Term {
	node := rdf.NewIRI(rdf.KGNS + "explanation/" +
		localOf(shrinkOr(e.g, ex.Question.IRI)) + "-" + ex.Type.String())
	e.g.Add(node, rdf.TypeIRI, rdf.NewIRI(rdf.EONS+"Explanation"))
	e.g.Add(node, rdf.TypeIRI, ex.Type.ClassIRI())
	e.g.Add(node, ontology.EOAddresses, ex.Question.IRI)
	e.g.Add(node, rdf.CommentIRI, rdf.NewLiteral(ex.Summary))
	for _, ev := range ex.Evidence {
		for _, t := range ev.Triples {
			if t.S.IsValid() && (t.S.IsIRI() || t.S.IsBlank()) {
				e.g.Add(node, ontology.EOUsesKnowledge, t.S)
			}
		}
	}
	// Link to the recommendation being explained when the primary
	// parameter was recommended by a system.
	for _, sys := range e.g.InstancesOf(ontology.EOSystem) {
		if e.g.Has(sys, ontology.EORecommends, ex.Question.Primary) {
			e.g.Add(node, ontology.EOExplains, ex.Question.Primary)
			e.g.Add(node, ontology.EOGeneratedBy, sys)
		}
	}
	return node
}

func shrinkOr(g *store.Graph, t rdf.Term) string {
	if q, ok := g.Namespaces().Shrink(t.Value); ok {
		return q
	}
	return t.Value
}

// label renders a term for humans: rdfs:label, else QName local part.
func (e *Engine) label(t rdf.Term) string {
	if l := e.g.FirstObject(t, rdf.LabelIRI); l.IsValid() {
		return l.Value
	}
	if q, ok := e.g.Namespaces().Shrink(t.Value); ok {
		return spaceCamel(localOf(q))
	}
	return t.Value
}

func localOf(qname string) string {
	for i := len(qname) - 1; i >= 0; i-- {
		if qname[i] == ':' {
			return qname[i+1:]
		}
	}
	return qname
}

// spaceCamel turns "CauliflowerPotatoCurry" into "Cauliflower Potato Curry".
func spaceCamel(s string) string {
	out := make([]rune, 0, len(s)+4)
	runes := []rune(s)
	for i, r := range runes {
		if i > 0 && r >= 'A' && r <= 'Z' && runes[i-1] >= 'a' && runes[i-1] <= 'z' {
			out = append(out, ' ')
		}
		out = append(out, r)
	}
	return string(out)
}
