package core

import (
	"strings"
	"testing"

	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

func engineFor(t *testing.T, cq ontology.CompetencyQuestion) *Engine {
	t.Helper()
	g, r := ontology.Dataset(cq)
	return NewEngine(g, r)
}

func TestContextualCQ1(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	ex, err := e.Explain(Question{
		IRI:     ontology.QWhyEatCauliflowerPotatoCurry,
		Type:    Contextual,
		Primary: ontology.CauliflowerPotatoCurry,
		Text:    "Why should I eat Cauliflower Potato Curry?",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's possible answer mentions the season.
	if !strings.Contains(ex.Summary, "Autumn is the current season") {
		t.Errorf("summary = %q, want season mention", ex.Summary)
	}
	if len(ex.Evidence) == 0 {
		t.Fatal("no evidence")
	}
	// Provenance triples must exist in the graph.
	for _, ev := range ex.Evidence {
		for _, tr := range ev.Triples {
			if !e.Graph().Has(tr.S, tr.P, tr.O) {
				t.Errorf("evidence triple %v not in graph", tr)
			}
		}
	}
}

func TestContrastiveCQ2(t *testing.T) {
	e := engineFor(t, ontology.CQ2)
	ex, err := e.Explain(Question{
		IRI:       ontology.QWhyEatButternutOverBroccoli,
		Type:      Contrastive,
		Primary:   ontology.ButternutSquashSoup,
		Secondary: ontology.BroccoliCheddarSoup,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's possible answer: in season + allergy.
	if !strings.Contains(ex.Summary, "Butternut Squash Soup is better than Broccoli Cheddar Soup") {
		t.Errorf("summary framing wrong: %q", ex.Summary)
	}
	if !strings.Contains(ex.Summary, "current season") {
		t.Errorf("summary should mention the season fact: %q", ex.Summary)
	}
	if !strings.Contains(ex.Summary, "allergic to Broccoli") {
		t.Errorf("summary should mention the allergy foil: %q", ex.Summary)
	}
}

func TestContrastiveNeedsSecondary(t *testing.T) {
	e := engineFor(t, ontology.CQ2)
	_, err := e.Explain(Question{Type: Contrastive, Primary: ontology.ButternutSquashSoup})
	if err == nil {
		t.Error("contrastive without secondary should fail")
	}
}

func TestCounterfactualCQ3(t *testing.T) {
	e := engineFor(t, ontology.CQ3)
	ex, err := e.Explain(Question{
		IRI:     ontology.QWhatIfIWasPregnant,
		Type:    Counterfactual,
		Primary: ontology.Pregnancy,
		Text:    "What if I was pregnant?",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's possible answer: forbidden sushi, suggested spinach
	// frittata.
	if !strings.Contains(ex.Summary, "forbidden from eating Sushi") {
		t.Errorf("summary should forbid sushi: %q", ex.Summary)
	}
	if !strings.Contains(ex.Summary, "Spinach") || !strings.Contains(ex.Summary, "Spinach Frittata") {
		t.Errorf("summary should suggest spinach (frittata): %q", ex.Summary)
	}
}

func TestAdHocQuestionAssertion(t *testing.T) {
	// Asking about a parameter with no pre-asserted question must mint a
	// question individual, re-reason, and still find the context.
	e := engineFor(t, ontology.CQ1)
	ex, err := e.Explain(Question{
		Type:    Contextual,
		Primary: ontology.CauliflowerPotatoCurry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "Autumn") {
		t.Errorf("ad-hoc contextual lost the season: %q", ex.Summary)
	}
	if !ex.Question.IRI.IsValid() {
		t.Error("question IRI should have been minted")
	}
	if !e.Graph().IsA(ex.Question.IRI, ontology.FEOFoodQuestion) {
		t.Error("minted question not asserted into graph")
	}
}

func TestCaseBased(t *testing.T) {
	e := engineFor(t, ontology.CQ2)
	// User2 likes BroccoliCheddarSoup; ask from another user's view.
	ex, err := e.Explain(Question{
		Type:    CaseBased,
		Primary: ontology.BroccoliCheddarSoup,
		User:    ontology.User1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "1 other user") {
		t.Errorf("case-based summary = %q", ex.Summary)
	}
	// Asking as the liker excludes self.
	ex2, err := e.Explain(Question{
		Type:    CaseBased,
		Primary: ontology.BroccoliCheddarSoup,
		User:    ontology.User2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex2.Summary, "No other user") {
		t.Errorf("self-excluding case-based = %q", ex2.Summary)
	}
}

func TestEverydayForIngredient(t *testing.T) {
	e := engineFor(t, ontology.CQ3)
	ex, err := e.Explain(Question{Type: Everyday, Primary: ontology.Spinach})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "Egg") {
		t.Errorf("spinach should pair with egg (via frittata): %q", ex.Summary)
	}
}

func TestEverydayForRecipe(t *testing.T) {
	e := engineFor(t, ontology.CQ3)
	ex, err := e.Explain(Question{Type: Everyday, Primary: ontology.Sushi})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "Rice") {
		t.Errorf("sushi pairings should list rice: %q", ex.Summary)
	}
}

func TestEverydayGlobal(t *testing.T) {
	e := engineFor(t, ontology.CQ3)
	ex, err := e.Explain(Question{Type: Everyday})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Evidence) == 0 {
		t.Errorf("global everyday should find co-occurrences: %q", ex.Summary)
	}
}

func TestScientific(t *testing.T) {
	e := engineFor(t, ontology.CQ3)
	ex, err := e.Explain(Question{Type: Scientific, Primary: ontology.SpinachFrittata})
	if err != nil {
		t.Fatal(err)
	}
	// The frittata's spinach/folate chain should surface the CDC guidance.
	if !strings.Contains(ex.Summary, "CDC folic acid guidance") {
		t.Errorf("scientific summary = %q", ex.Summary)
	}
	// Direct evidence on the food itself also works.
	ex2, err := e.Explain(Question{Type: Scientific, Primary: ontology.Spinach})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Evidence) == 0 {
		t.Error("spinach should have direct evidence")
	}
}

func TestScientificNoEvidence(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	ex, err := e.Explain(Question{Type: Scientific, Primary: ontology.Potato})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "No literature") {
		t.Errorf("expected empty-evidence summary, got %q", ex.Summary)
	}
}

func TestSimulationBased(t *testing.T) {
	g, r := ontology.Dataset(ontology.CQ1)
	g.Add(ontology.CauliflowerPotatoCurry, ontology.FoodCalories, rdf.NewInt(500))
	g.Add(ontology.CauliflowerPotatoCurry, ontology.FoodProtein, rdf.NewInt(20))
	e := NewEngine(g, r)
	ex, err := e.Explain(Question{Type: SimulationBased, Primary: ontology.CauliflowerPotatoCurry})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "500 kcal") || !strings.Contains(ex.Summary, "25%") {
		t.Errorf("simulation summary = %q", ex.Summary)
	}
}

func TestSimulationNoData(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	ex, err := e.Explain(Question{Type: SimulationBased, Primary: ontology.Potato})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "cannot simulate") {
		t.Errorf("expected no-data summary: %q", ex.Summary)
	}
}

func TestStatistical(t *testing.T) {
	g, r := ontology.Dataset(ontology.CQ2)
	// Build a small cohort: three users share a liked food with User2; two
	// of them follow the vegan diet.
	vegan := rdf.NewIRI(rdf.KGNS + "diet/Vegan")
	g.Add(vegan, rdf.TypeIRI, ontology.FoodDiet)
	g.Add(vegan, rdf.LabelIRI, rdf.NewLiteral("Vegan"))
	for i, hasDiet := range []bool{true, true, false} {
		u := rdf.NewIRI(rdf.KGNS + "user/peer" + string(rune('a'+i)))
		g.Add(u, rdf.TypeIRI, ontology.FoodUser)
		g.Add(u, ontology.FEOLike, ontology.BroccoliCheddarSoup)
		if hasDiet {
			g.Add(u, ontology.FEOHasDiet, vegan)
		}
	}
	r.Materialize(g)
	e := NewEngine(g, r)
	ex, err := e.Explain(Question{Type: Statistical, Primary: vegan, User: ontology.User2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "2 of 3") {
		t.Errorf("statistical summary = %q", ex.Summary)
	}
	// Without a user: global rates.
	ex2, err := e.Explain(Question{Type: Statistical, Primary: vegan})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex2.Summary, "follow the Vegan diet") {
		t.Errorf("global statistical summary = %q", ex2.Summary)
	}
}

func TestTraceBasedWithCoach(t *testing.T) {
	g, r := ontology.Dataset(ontology.CQ2)
	e := NewEngine(g, r)
	coach := healthcoach.New(g, healthcoach.DefaultWeights())
	e.SetCoach(coach)
	ex, err := e.Explain(Question{
		Type:    TraceBased,
		Primary: ontology.ButternutSquashSoup,
		User:    ontology.User2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "scoring steps") {
		t.Errorf("trace summary = %q", ex.Summary)
	}
	if len(ex.Evidence) == 0 {
		t.Error("trace should carry steps")
	}
}

func TestTraceBasedExcludedRecipe(t *testing.T) {
	g, r := ontology.Dataset(ontology.CQ2)
	e := NewEngine(g, r)
	e.SetCoach(healthcoach.New(g, healthcoach.DefaultWeights()))
	ex, err := e.Explain(Question{
		Type:    TraceBased,
		Primary: ontology.BroccoliCheddarSoup,
		User:    ontology.User2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "not recommended") {
		t.Errorf("excluded trace summary = %q", ex.Summary)
	}
}

func TestTraceBasedReasonerFallback(t *testing.T) {
	e := engineFor(t, ontology.CQ3)
	ex, err := e.Explain(Question{Type: TraceBased, Primary: ontology.Sushi})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Evidence) == 0 {
		t.Errorf("reasoner fallback should produce proof steps: %q", ex.Summary)
	}
}

func TestAllNineTypesProduceAnswers(t *testing.T) {
	// Table I reproduction at the engine level: every explanation type
	// yields a non-empty summary on the combined dataset.
	g, r := ontology.Dataset(ontology.CQAll)
	g.Add(ontology.Sushi, ontology.FoodCalories, rdf.NewInt(450))
	e := NewEngine(g, r)
	e.SetCoach(healthcoach.New(g, healthcoach.DefaultWeights()))
	vegan := rdf.NewIRI(rdf.KGNS + "diet/Vegan")
	g.Add(vegan, rdf.TypeIRI, ontology.FoodDiet)

	questions := map[ExplanationType]Question{
		CaseBased:       {Type: CaseBased, Primary: ontology.BroccoliCheddarSoup, User: ontology.User1},
		Contextual:      {Type: Contextual, Primary: ontology.CauliflowerPotatoCurry},
		Contrastive:     {Type: Contrastive, Primary: ontology.ButternutSquashSoup, Secondary: ontology.BroccoliCheddarSoup},
		Counterfactual:  {Type: Counterfactual, Primary: ontology.Pregnancy},
		Everyday:        {Type: Everyday, Primary: ontology.Spinach},
		Scientific:      {Type: Scientific, Primary: ontology.Spinach},
		SimulationBased: {Type: SimulationBased, Primary: ontology.Sushi},
		Statistical:     {Type: Statistical, Primary: vegan, User: ontology.User2},
		TraceBased:      {Type: TraceBased, Primary: ontology.ButternutSquashSoup, User: ontology.User2},
	}
	for _, et := range AllExplanationTypes() {
		q, ok := questions[et]
		if !ok {
			t.Fatalf("no question for %v", et)
		}
		ex, err := e.Explain(q)
		if err != nil {
			t.Errorf("%v: %v", et, err)
			continue
		}
		if ex.Summary == "" {
			t.Errorf("%v: empty summary", et)
		}
		if ex.Type != et {
			t.Errorf("%v: type mismatch %v", et, ex.Type)
		}
	}
}

func TestParseExplanationType(t *testing.T) {
	for _, et := range AllExplanationTypes() {
		parsed, err := ParseExplanationType(et.String())
		if err != nil || parsed != et {
			t.Errorf("round trip failed for %v", et)
		}
		if et.ExampleQuestion() == "" {
			t.Errorf("%v missing example question", et)
		}
		if !et.ClassIRI().IsValid() {
			t.Errorf("%v missing class IRI", et)
		}
	}
	if _, err := ParseExplanationType("bogus"); err == nil {
		t.Error("bogus type should fail")
	}
}

func TestQuestionRequiresParameter(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	if _, err := e.Explain(Question{Type: Contextual}); err == nil {
		t.Error("contextual without parameter should fail")
	}
}

func TestSpaceCamel(t *testing.T) {
	for in, want := range map[string]string{
		"CauliflowerPotatoCurry": "Cauliflower Potato Curry",
		"Autumn":                 "Autumn",
		"rawFish":                "raw Fish",
		"ABC":                    "ABC",
		"":                       "",
	} {
		if got := spaceCamel(in); got != want {
			t.Errorf("spaceCamel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJoinPhrases(t *testing.T) {
	if joinPhrases(nil) != "" {
		t.Error("empty join")
	}
	if joinPhrases([]string{"a"}) != "a" {
		t.Error("single join")
	}
	if joinPhrases([]string{"a", "b"}) != "a and b" {
		t.Error("pair join")
	}
	if joinPhrases([]string{"a", "b", "c"}) != "a, b, and c" {
		t.Error("oxford join")
	}
}

func TestEngineBuildsOwnReasoner(t *testing.T) {
	g := ontology.TBox()
	g.Merge(ontology.ABox(ontology.CQ1))
	e := NewEngine(g, nil)
	if e.Reasoner() == nil {
		t.Fatal("engine should create a reasoner")
	}
	// The graph must be materialized (season classified).
	if !g.IsA(ontology.Autumn, ontology.FEOSeason) {
		t.Error("NewEngine(nil reasoner) must materialize")
	}
	_ = store.Wildcard // keep import for clarity of intent
}

func TestExplanationAssertedIntoGraph(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	ex, err := e.Explain(Question{
		IRI:     ontology.QWhyEatCauliflowerPotatoCurry,
		Type:    Contextual,
		Primary: ontology.CauliflowerPotatoCurry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.IRI.IsValid() {
		t.Fatal("explanation IRI missing")
	}
	g := e.Graph()
	if !g.IsA(ex.IRI, ontology.EOContextualExplanation) {
		t.Error("explanation individual missing its type class")
	}
	if !g.Has(ex.IRI, ontology.EOAddresses, ontology.QWhyEatCauliflowerPotatoCurry) {
		t.Error("explanation should address its question")
	}
	if !g.Exists(ex.IRI, ontology.EOUsesKnowledge, store.Wildcard) {
		t.Error("explanation should record the knowledge it uses")
	}
	// The system recommended the curry, so the explanation explains it.
	if !g.Has(ex.IRI, ontology.EOExplains, ontology.CauliflowerPotatoCurry) {
		t.Error("explanation should link to the recommendation")
	}
	// Idempotence: asking again reuses the individual.
	ex2, err := e.Explain(Question{
		IRI:     ontology.QWhyEatCauliflowerPotatoCurry,
		Type:    Contextual,
		Primary: ontology.CauliflowerPotatoCurry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex2.IRI != ex.IRI {
		t.Error("repeated asks should reuse the explanation individual")
	}
}

func TestExplanationsAreQueryable(t *testing.T) {
	// The paper's premise: explanations are semantic objects. After
	// explaining, SPARQL can find them.
	e := engineFor(t, ontology.CQ3)
	if _, err := e.Explain(Question{
		IRI:     ontology.QWhatIfIWasPregnant,
		Type:    Counterfactual,
		Primary: ontology.Pregnancy,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := sparql.Run(e.Graph(), `
SELECT ?ex ?summary WHERE {
  ?ex a eo:CounterfactualExplanation .
  ?ex eo:addresses feo:WhatIfIWasPregnant .
  ?ex rdfs:comment ?summary .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("explanations found = %d, want 1", res.Len())
	}
	if !strings.Contains(res.Get(0, "summary").Value, "Sushi") {
		t.Errorf("stored summary = %q", res.Get(0, "summary").Value)
	}
}

// TestExplainIdempotentGraphSize: repeated asks of the same question must
// not grow the graph — the question individual, its comment, and the
// explanation individual are all reused.
func TestExplainIdempotentGraphSize(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	q := Question{
		Type:    Contextual,
		Primary: ontology.CauliflowerPotatoCurry,
		Text:    "Why should I eat Cauliflower Potato Curry?",
	}
	if _, err := e.Explain(q); err != nil {
		t.Fatal(err)
	}
	n := e.Graph().Len()
	for i := 0; i < 3; i++ {
		if _, err := e.Explain(q); err != nil {
			t.Fatal(err)
		}
		if got := e.Graph().Len(); got != n {
			t.Fatalf("repeat %d: graph grew %d -> %d triples; Explain not idempotent", i+1, n, got)
		}
	}
}

// TestQuestionTextKeysCache: asks that differ only in free-form text get
// their own question individuals, each carrying exactly one rdfs:comment —
// the historical bug piled every phrasing onto one shared individual.
func TestQuestionTextKeysCache(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	ex1, err := e.Explain(Question{
		Type: Contextual, Primary: ontology.CauliflowerPotatoCurry,
		Text: "Why should I eat this curry?",
	})
	if err != nil {
		t.Fatal(err)
	}
	ex2, err := e.Explain(Question{
		Type: Contextual, Primary: ontology.CauliflowerPotatoCurry,
		Text: "Is the curry good for me?",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex1.Question.IRI == ex2.Question.IRI {
		t.Fatal("different question texts must mint different individuals")
	}
	for _, iri := range []rdf.Term{ex1.Question.IRI, ex2.Question.IRI} {
		if n := len(e.Graph().Objects(iri, rdf.CommentIRI)); n != 1 {
			t.Errorf("question %s carries %d comments, want exactly 1", iri, n)
		}
	}
	// Same text again: reuse, and still one comment.
	ex3, err := e.Explain(Question{
		Type: Contextual, Primary: ontology.CauliflowerPotatoCurry,
		Text: "Why should I eat this curry?",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex3.Question.IRI != ex1.Question.IRI {
		t.Error("same text must reuse the cached individual")
	}
	if n := len(e.Graph().Objects(ex1.Question.IRI, rdf.CommentIRI)); n != 1 {
		t.Errorf("reused question carries %d comments, want 1", n)
	}
}

// TestEngineRematerializeDelta: the engine's change capture hands the
// reasoner an exact delta, so a direct graph write re-classifies
// incrementally; a removal falls back to the full path.
func TestEngineRematerializeDelta(t *testing.T) {
	e := engineFor(t, ontology.CQ1)
	mango := rdf.NewIRI(rdf.KGNS + "ingredient/Mango")
	e.Graph().Add(mango, rdf.TypeIRI, ontology.FoodIngredient)
	st := e.Rematerialize()
	if !st.Delta {
		t.Fatal("addition-only span must take the incremental path")
	}
	if st.Inferred == 0 {
		t.Error("ingredient classification should infer at least one triple")
	}
	e.Graph().Remove(mango, rdf.TypeIRI, ontology.FoodIngredient)
	if st := e.Rematerialize(); st.Delta {
		t.Error("a span containing a removal must fall back to the full path")
	}
	// Explain itself rides the delta path end to end.
	if _, err := e.Explain(Question{
		Type: Contextual, Primary: ontology.CauliflowerPotatoCurry, Text: "delta probe",
	}); err != nil {
		t.Fatal(err)
	}
	if st := e.Rematerialize(); st.Delta != true {
		t.Error("explanation assertions should leave a clean addition-only capture")
	}
}
