package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// contextual implements the paper's Listing 1 (CQ1) with the question bound
// and a most-specific-class filter added for clean rendering: surface the
// external (non-food) characteristics of the parameter that hold in the
// current user/system ecosystem.
func (e *Engine) contextual(q Question) (*Explanation, error) {
	query := fmt.Sprintf(`
SELECT DISTINCT ?parameter ?characteristic ?classes WHERE {
  BIND(<%s> AS ?question) .
  ?question feo:hasParameter ?parameter .
  ?parameter feo:hasCharacteristic ?characteristic .
  ?characteristic feo:isInternal false .
  { ?characteristic a feo:SystemCharacteristic } UNION { ?characteristic a feo:UserCharacteristic } .
  ?characteristic a ?classes .
  ?classes rdfs:subClassOf feo:Characteristic .
  FILTER NOT EXISTS { ?classes rdfs:subClassOf eo:knowledge } .
  FILTER NOT EXISTS { ?sub rdfs:subClassOf ?classes } .
}`, q.IRI.Value)
	res, err := sparql.Run(e.g, query)
	if err != nil {
		return nil, fmt.Errorf("core: contextual query: %w", err)
	}
	ex := &Explanation{Type: Contextual, Question: q, Query: query}
	for _, sol := range sortedSolutions(res.Solutions, "characteristic", "classes") {
		char, class, param := sol["characteristic"], sol["classes"], sol["parameter"]
		ev := Evidence{
			Bindings: sol,
			Triples: []rdf.Triple{
				{S: param, P: ontology.FEOHasCharacteristic, O: char},
				{S: char, P: rdf.TypeIRI, O: class},
			},
			Phrase: e.characteristicPhrase(class, char),
		}
		ex.Evidence = append(ex.Evidence, ev)
	}
	subject := e.label(q.Primary)
	if subject == "" && len(ex.Evidence) > 0 {
		subject = "this food"
	}
	if len(ex.Evidence) == 0 {
		ex.Summary = fmt.Sprintf("No external context supports eating %s right now.", subject)
	} else {
		ex.Summary = fmt.Sprintf("You should eat %s because %s.",
			subject, joinPhrases(phrases(ex.Evidence)))
	}
	return ex, nil
}

// contrastive implements the paper's Listing 2 (CQ2): facts supporting the
// primary parameter versus foils opposing the secondary parameter.
func (e *Engine) contrastive(q Question) (*Explanation, error) {
	if !q.Secondary.IsValid() {
		return nil, fmt.Errorf("core: contrastive questions need a secondary parameter")
	}
	query := fmt.Sprintf(`
SELECT DISTINCT ?factType ?factA ?foilType ?foilB WHERE {
  BIND(<%s> AS ?question) .
  ?question feo:hasPrimaryParameter ?parameterA .
  ?question feo:hasSecondaryParameter ?parameterB .
  ?parameterA feo:hasCharacteristic ?factA .
  ?factA a eo:Fact .
  ?factA a ?factType .
  ?factType (rdfs:subClassOf+) feo:Characteristic .
  FILTER NOT EXISTS { ?factType rdfs:subClassOf eo:knowledge } .
  FILTER NOT EXISTS { ?s rdfs:subClassOf ?factType } .
  ?parameterB feo:hasCharacteristic ?foilB .
  ?foilB a eo:Foil .
  ?foilB a ?foilType .
  ?foilType (rdfs:subClassOf+) feo:Characteristic .
  FILTER NOT EXISTS { ?foilType rdfs:subClassOf eo:knowledge } .
  FILTER NOT EXISTS { ?t rdfs:subClassOf ?foilType } .
}`, q.IRI.Value)
	res, err := sparql.Run(e.g, query)
	if err != nil {
		return nil, fmt.Errorf("core: contrastive query: %w", err)
	}
	ex := &Explanation{Type: Contrastive, Question: q, Query: query}
	factSet := map[string]bool{}
	foilSet := map[string]bool{}
	var factPhrases, foilPhrases []string
	for _, sol := range sortedSolutions(res.Solutions, "factA", "foilB") {
		fact, factType := sol["factA"], sol["factType"]
		foil, foilType := sol["foilB"], sol["foilType"]
		fp := e.characteristicPhrase(factType, fact)
		op := e.opposingPhrase(foilType, foil, q.Secondary)
		if !factSet[fp] {
			factSet[fp] = true
			factPhrases = append(factPhrases, fp)
		}
		if !foilSet[op] {
			foilSet[op] = true
			foilPhrases = append(foilPhrases, op)
		}
		ex.Evidence = append(ex.Evidence, Evidence{
			Bindings: sol,
			Triples: []rdf.Triple{
				{S: fact, P: rdf.TypeIRI, O: ontology.EOFact},
				{S: foil, P: rdf.TypeIRI, O: ontology.EOFoil},
			},
			Phrase: fp + "; " + op,
		})
	}
	a, b := e.label(q.Primary), e.label(q.Secondary)
	if len(ex.Evidence) == 0 {
		ex.Summary = fmt.Sprintf("No decisive facts distinguish %s from %s.", a, b)
	} else {
		ex.Summary = fmt.Sprintf("%s is better than %s because %s, and %s.",
			a, b, joinPhrases(factPhrases), joinPhrases(foilPhrases))
	}
	return ex, nil
}

// counterfactual implements the paper's Listing 3 (CQ3): project the
// consequences of a hypothetical parameter (condition, ingredient change)
// through the forbids/recommends lattice.
func (e *Engine) counterfactual(q Question) (*Explanation, error) {
	query := fmt.Sprintf(`
SELECT DISTINCT ?property ?baseFood ?inheritedFood WHERE {
  BIND(<%s> AS ?question) .
  ?question feo:hasParameter ?parameter .
  ?parameter ?property ?baseFood .
  ?property rdfs:subPropertyOf feo:isCharacteristicOf .
  ?baseFood a food:Food .
  OPTIONAL { ?baseFood feo:isIngredientOf ?inheritedFood . }
}`, q.IRI.Value)
	res, err := sparql.Run(e.g, query)
	if err != nil {
		return nil, fmt.Errorf("core: counterfactual query: %w", err)
	}
	ex := &Explanation{Type: Counterfactual, Question: q, Query: query}
	var forbidden, suggested []string
	for _, sol := range sortedSolutions(res.Solutions, "property", "baseFood") {
		prop, food := sol["property"], sol["baseFood"]
		inherited, hasInherited := sol["inheritedFood"]
		ev := Evidence{Bindings: sol, Triples: []rdf.Triple{{S: q.Primary, P: prop, O: food}}}
		switch prop {
		case ontology.FEOForbids:
			ev.Phrase = fmt.Sprintf("you would be forbidden from eating %s", e.label(food))
			forbidden = append(forbidden, e.label(food))
		case ontology.FEORecommends:
			if hasInherited {
				ev.Phrase = fmt.Sprintf("you would be suggested to eat %s (for example in %s)",
					e.label(food), e.label(inherited))
				suggested = append(suggested, fmt.Sprintf("%s (for example in %s)",
					e.label(food), e.label(inherited)))
			} else {
				ev.Phrase = fmt.Sprintf("you would be suggested to eat %s", e.label(food))
				suggested = append(suggested, e.label(food))
			}
		default:
			ev.Phrase = fmt.Sprintf("%s would apply to %s", e.label(prop), e.label(food))
		}
		ex.Evidence = append(ex.Evidence, ev)
	}
	cond := e.label(q.Primary)
	var parts []string
	if len(forbidden) > 0 {
		parts = append(parts, fmt.Sprintf("you would be forbidden from eating %s", joinPhrases(dedupe(forbidden))))
	}
	if len(suggested) > 0 {
		parts = append(parts, fmt.Sprintf("you would be suggested to eat %s", joinPhrases(dedupe(suggested))))
	}
	if len(parts) == 0 {
		ex.Summary = fmt.Sprintf("If %s applied, nothing would change.", cond)
	} else {
		ex.Summary = fmt.Sprintf("If %s applied, %s.", cond, strings.Join(parts, ", and "))
	}
	return ex, nil
}

// caseBased answers "What results from other users recommend food A?" by
// surveying peers who like the parameter.
func (e *Engine) caseBased(q Question) (*Explanation, error) {
	filter := ""
	if q.User.IsValid() {
		filter = fmt.Sprintf("FILTER(?other != <%s>) .", q.User.Value)
	}
	query := fmt.Sprintf(`
SELECT DISTINCT ?other WHERE {
  ?other feo:like <%s> .
  ?other a food:User .
  %s
}`, q.Primary.Value, filter)
	res, err := sparql.Run(e.g, query)
	if err != nil {
		return nil, fmt.Errorf("core: case-based query: %w", err)
	}
	ex := &Explanation{Type: CaseBased, Question: q, Query: query}
	for _, sol := range sortedSolutions(res.Solutions, "other") {
		other := sol["other"]
		ex.Evidence = append(ex.Evidence, Evidence{
			Bindings: sol,
			Triples:  []rdf.Triple{{S: other, P: ontology.FEOLike, O: q.Primary}},
			Phrase:   fmt.Sprintf("%s likes it", e.label(other)),
		})
	}
	subject := e.label(q.Primary)
	switch n := len(ex.Evidence); n {
	case 0:
		ex.Summary = fmt.Sprintf("No other user has tried %s yet.", subject)
	case 1:
		ex.Summary = fmt.Sprintf("1 other user with a similar profile likes %s.", subject)
	default:
		ex.Summary = fmt.Sprintf("%d other users with similar profiles like %s.", n, subject)
	}
	return ex, nil
}

// everyday answers "What foods go together?" from ingredient co-occurrence
// across recipes.
func (e *Engine) everyday(q Question) (*Explanation, error) {
	var query string
	switch {
	case q.Primary.IsValid() && e.g.IsA(q.Primary, ontology.FoodRecipe):
		query = fmt.Sprintf(`
SELECT DISTINCT ?companion WHERE { <%s> feo:hasIngredient ?companion . }`, q.Primary.Value)
	case q.Primary.IsValid():
		query = fmt.Sprintf(`
SELECT ?companion (COUNT(?recipe) AS ?n) WHERE {
  ?recipe feo:hasIngredient <%s> .
  ?recipe feo:hasIngredient ?companion .
  FILTER(?companion != <%s>)
} GROUP BY ?companion ORDER BY DESC(?n) LIMIT 7`, q.Primary.Value, q.Primary.Value)
	default:
		query = `
SELECT ?a ?b (COUNT(?r) AS ?n) WHERE {
  ?r feo:hasIngredient ?a .
  ?r feo:hasIngredient ?b .
  FILTER(STR(?a) < STR(?b))
} GROUP BY ?a ?b ORDER BY DESC(?n) LIMIT 7`
	}
	res, err := sparql.Run(e.g, query)
	if err != nil {
		return nil, fmt.Errorf("core: everyday query: %w", err)
	}
	ex := &Explanation{Type: Everyday, Question: q, Query: query}
	var items []string
	for _, sol := range res.Solutions {
		var phrase string
		if a, ok := sol["a"]; ok {
			phrase = fmt.Sprintf("%s with %s", e.label(a), e.label(sol["b"]))
		} else {
			phrase = e.label(sol["companion"])
		}
		if n, ok := sol["n"]; ok {
			if c, ok2 := n.Int(); ok2 && c > 1 {
				phrase += fmt.Sprintf(" (in %d recipes)", c)
			}
		}
		items = append(items, phrase)
		ex.Evidence = append(ex.Evidence, Evidence{Bindings: sol, Phrase: phrase})
	}
	if len(items) == 0 {
		ex.Summary = "No common pairings found."
	} else if q.Primary.IsValid() {
		ex.Summary = fmt.Sprintf("%s goes together with %s.", e.label(q.Primary), joinPhrases(items))
	} else {
		ex.Summary = fmt.Sprintf("Foods that commonly go together: %s.", joinPhrases(items))
	}
	return ex, nil
}

// scientific answers "What literature recommends Food A?" from
// eo:ScientificKnowledge records tied to the food or its characteristics.
func (e *Engine) scientific(q Question) (*Explanation, error) {
	query := fmt.Sprintf(`
SELECT DISTINCT ?study ?source ?subject WHERE {
  { BIND(<%s> AS ?subject) . ?study eo:evidenceFor ?subject . }
  UNION
  { <%s> feo:hasCharacteristic ?subject . ?study eo:evidenceFor ?subject . }
  ?study eo:citesSource ?source .
}`, q.Primary.Value, q.Primary.Value)
	res, err := sparql.Run(e.g, query)
	if err != nil {
		return nil, fmt.Errorf("core: scientific query: %w", err)
	}
	ex := &Explanation{Type: Scientific, Question: q, Query: query}
	var cites []string
	seen := map[string]bool{}
	for _, sol := range sortedSolutions(res.Solutions, "source", "subject") {
		src := sol["source"].Value
		phrase := fmt.Sprintf("%s (evidence concerning %s)", src, e.label(sol["subject"]))
		ex.Evidence = append(ex.Evidence, Evidence{
			Bindings: sol,
			Triples:  []rdf.Triple{{S: sol["study"], P: ontology.EOBasedOnEvidence, O: sol["subject"]}},
			Phrase:   phrase,
		})
		if !seen[src] {
			seen[src] = true
			cites = append(cites, src)
		}
	}
	subject := e.label(q.Primary)
	if len(cites) == 0 {
		ex.Summary = fmt.Sprintf("No literature in the knowledge base covers %s.", subject)
	} else {
		ex.Summary = fmt.Sprintf("Literature relevant to %s: %s.", subject, strings.Join(cites, "; "))
	}
	return ex, nil
}

// simulationBased answers "What if I ate food A every day?" by projecting
// its nutrition against daily guidelines.
func (e *Engine) simulationBased(q Question) (*Explanation, error) {
	query := fmt.Sprintf(`
SELECT ?cal ?protein WHERE {
  <%s> food:calories ?cal .
  OPTIONAL { <%s> food:proteinGrams ?protein . }
}`, q.Primary.Value, q.Primary.Value)
	res, err := sparql.Run(e.g, query)
	if err != nil {
		return nil, fmt.Errorf("core: simulation query: %w", err)
	}
	ex := &Explanation{Type: SimulationBased, Question: q, Query: query}
	subject := e.label(q.Primary)
	if res.Len() == 0 {
		ex.Summary = fmt.Sprintf("No nutrition data for %s; cannot simulate.", subject)
		return ex, nil
	}
	const dailyKcal = 2000.0
	cal, _ := res.Get(0, "cal").Float()
	pct := cal / dailyKcal * 100
	phrase := fmt.Sprintf("one serving is ~%.0f kcal (%.0f%% of a %v kcal guideline); a week adds up to ~%.0f kcal",
		cal, pct, dailyKcal, cal*7)
	ex.Evidence = append(ex.Evidence, Evidence{Bindings: res.Solutions[0], Phrase: phrase})
	if protein, ok := res.Get(0, "protein").Float(); ok {
		ex.Evidence = append(ex.Evidence, Evidence{
			Bindings: res.Solutions[0],
			Phrase:   fmt.Sprintf("daily protein would be ~%.0f g", protein),
		})
	}
	verdict := "that is a sustainable staple"
	switch {
	case pct > 40:
		verdict = "that would crowd out a balanced diet"
	case pct > 25:
		verdict = "that is substantial; balance the rest of the day carefully"
	}
	ex.Summary = fmt.Sprintf("If you ate %s every day, %s — %s.", subject, phrase, verdict)
	return ex, nil
}

// statistical answers "What evidence from data suggests I follow diet D?"
// by aggregating over users with overlapping tastes.
func (e *Engine) statistical(q Question) (*Explanation, error) {
	var peersQuery, withDietQuery string
	if q.User.IsValid() {
		peersQuery = fmt.Sprintf(`
SELECT (COUNT(DISTINCT ?peer) AS ?n) WHERE {
  <%s> feo:like ?f . ?peer feo:like ?f . FILTER(?peer != <%s>)
}`, q.User.Value, q.User.Value)
		withDietQuery = fmt.Sprintf(`
SELECT (COUNT(DISTINCT ?peer) AS ?n) WHERE {
  <%s> feo:like ?f . ?peer feo:like ?f . ?peer feo:hasDiet <%s> . FILTER(?peer != <%s>)
}`, q.User.Value, q.Primary.Value, q.User.Value)
	} else {
		peersQuery = `SELECT (COUNT(DISTINCT ?u) AS ?n) WHERE { ?u a food:User }`
		withDietQuery = fmt.Sprintf(
			`SELECT (COUNT(DISTINCT ?u) AS ?n) WHERE { ?u feo:hasDiet <%s> }`, q.Primary.Value)
	}
	peers, err := sparql.Run(e.g, peersQuery)
	if err != nil {
		return nil, fmt.Errorf("core: statistical peers query: %w", err)
	}
	withDiet, err := sparql.Run(e.g, withDietQuery)
	if err != nil {
		return nil, fmt.Errorf("core: statistical diet query: %w", err)
	}
	nPeers, _ := peers.Get(0, "n").Int()
	nDiet, _ := withDiet.Get(0, "n").Int()
	ex := &Explanation{Type: Statistical, Question: q, Query: peersQuery + "\n" + withDietQuery}
	ex.Evidence = append(ex.Evidence,
		Evidence{Bindings: peers.Solutions[0], Phrase: fmt.Sprintf("%d comparable users", nPeers)},
		Evidence{Bindings: withDiet.Solutions[0], Phrase: fmt.Sprintf("%d of them follow the diet", nDiet)},
	)
	diet := e.label(q.Primary)
	if nPeers == 0 {
		ex.Summary = fmt.Sprintf("Not enough data to assess the %s diet for you.", diet)
	} else {
		ex.Summary = fmt.Sprintf("%d of %d comparable users (%.0f%%) follow the %s diet.",
			nDiet, nPeers, float64(nDiet)/float64(nPeers)*100, diet)
	}
	return ex, nil
}

// traceBased answers "What steps led to recommendation E?" from the Health
// Coach scoring trace when available, falling back to the reasoner's
// derivation proof for the recommendation triple.
func (e *Engine) traceBased(q Question) (*Explanation, error) {
	ex := &Explanation{Type: TraceBased, Question: q}
	subject := e.label(q.Primary)
	if e.coach != nil && q.User.IsValid() {
		recs := e.coach.Recommend(q.User, 0)
		for rank, rec := range recs {
			if rec.Recipe != q.Primary {
				continue
			}
			if rec.Excluded {
				ex.Evidence = append(ex.Evidence, Evidence{Phrase: "excluded: " + rec.Reason})
				ex.Summary = fmt.Sprintf("%s was not recommended: %s.", subject, rec.Reason)
				return ex, nil
			}
			for _, step := range rec.Trace {
				ex.Evidence = append(ex.Evidence, Evidence{
					Phrase: fmt.Sprintf("%s (%+.1f)", step.Detail, step.Delta),
				})
			}
			ex.Summary = fmt.Sprintf("%s scored %.1f (rank %d) via %d scoring steps: %s.",
				subject, rec.Score, rank+1, len(rec.Trace), joinPhrases(phrases(ex.Evidence)))
			return ex, nil
		}
	}
	// Fallback: reasoner proof of the system recommendation triple.
	systems := e.g.InstancesOf(ontology.EOSystem)
	for _, sys := range systems {
		target := rdf.Triple{S: sys, P: ontology.EORecommends, O: q.Primary}
		if !e.g.Has(target.S, target.P, target.O) {
			continue
		}
		proof := e.r.Proof(target)
		for _, step := range proof {
			ex.Evidence = append(ex.Evidence, Evidence{
				Triples: []rdf.Triple{step.Conclusion},
				Phrase:  fmt.Sprintf("[%s] %s", step.Rule, e.renderTriple(step.Conclusion)),
			})
		}
		ex.Summary = fmt.Sprintf("%d knowledge-base steps led to recommending %s.", len(proof), subject)
		return ex, nil
	}
	ex.Summary = fmt.Sprintf("No recorded trace for %s.", subject)
	return ex, nil
}

// ---- rendering helpers ----

// characteristicPhrase renders a (class, instance) pair as supporting text.
func (e *Engine) characteristicPhrase(class, char rdf.Term) string {
	name := e.label(char)
	switch class {
	case ontology.FEOSeason:
		return fmt.Sprintf("%s is the current season", name)
	case ontology.FEOLocation:
		return fmt.Sprintf("the system is located in %s", name)
	case ontology.FEOTime:
		return fmt.Sprintf("it suits the current time (%s)", name)
	case ontology.FEOLikedFood:
		return fmt.Sprintf("you like %s", name)
	case ontology.FEOGoal:
		return fmt.Sprintf("it aligns with your goal (%s)", name)
	case ontology.FEOBudget:
		return fmt.Sprintf("it fits your budget (%s)", name)
	case ontology.FEOCondition:
		return fmt.Sprintf("it suits your condition (%s)", name)
	case ontology.FEODiet:
		return fmt.Sprintf("it matches your %s diet", name)
	case ontology.FEOAllergicFood:
		return fmt.Sprintf("you are allergic to %s", name)
	case ontology.FEODislikedFood:
		return fmt.Sprintf("you dislike %s", name)
	default:
		return fmt.Sprintf("%s (%s) applies", name, e.label(class))
	}
}

// opposingPhrase renders a foil with its containing parameter for context
// ("you are allergic to Broccoli [in Broccoli Cheddar Soup]").
func (e *Engine) opposingPhrase(class, foil, parameter rdf.Term) string {
	base := e.characteristicPhrase(class, foil)
	if parameter.IsValid() && e.g.Has(parameter, ontology.FEOHasCharacteristic, foil) && foil != parameter {
		return fmt.Sprintf("%s (in %s)", base, e.label(parameter))
	}
	return base
}

func (e *Engine) renderTriple(t rdf.Triple) string {
	return fmt.Sprintf("%s %s %s",
		e.label(t.S), e.label(t.P), e.label(t.O))
}

func phrases(evidence []Evidence) []string {
	out := make([]string, 0, len(evidence))
	for _, ev := range evidence {
		out = append(out, ev.Phrase)
	}
	return out
}

// joinPhrases joins with commas and a final "and".
func joinPhrases(ps []string) string {
	switch len(ps) {
	case 0:
		return ""
	case 1:
		return ps[0]
	case 2:
		return ps[0] + " and " + ps[1]
	default:
		return strings.Join(ps[:len(ps)-1], ", ") + ", and " + ps[len(ps)-1]
	}
}

func dedupe(ss []string) []string {
	seen := make(map[string]bool, len(ss))
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// sortedSolutions orders solutions by the given keys for deterministic
// output.
func sortedSolutions(sols []sparql.Solution, keys ...string) []sparql.Solution {
	out := make([]sparql.Solution, len(sols))
	copy(out, sols)
	sort.SliceStable(out, func(i, j int) bool {
		for _, k := range keys {
			if c := rdf.Compare(out[i][k], out[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}
