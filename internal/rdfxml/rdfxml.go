// Package rdfxml reads and writes the RDF/XML concrete syntax — the format
// Protégé exports ontologies in (the paper's FEO is published as RDF/XML
// alongside Turtle). The parser covers the constructs ontology documents
// use: typed node elements, rdf:about / rdf:ID / rdf:nodeID,
// rdf:resource / rdf:datatype / xml:lang on property elements, nested node
// elements, property attributes, rdf:parseType="Resource" and
// rdf:parseType="Collection", and xml:base resolution.
//
// The writer emits one rdf:Description block per subject, which any RDF/XML
// consumer (including this parser) round-trips.
package rdfxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

const rdfXMLNS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"

// Parse reads an RDF/XML document into a fresh graph.
func Parse(r io.Reader) (*store.Graph, error) {
	g := store.New()
	if err := ParseInto(g, r); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseInto reads an RDF/XML document into g.
func ParseInto(g *store.Graph, r io.Reader) error {
	dec := xml.NewDecoder(r)
	p := &xparser{g: g, b: g.Bulk(), dec: dec}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return fmt.Errorf("rdfxml: no rdf:RDF root element")
		}
		if err != nil {
			return fmt.Errorf("rdfxml: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			if start.Name.Space == rdfXMLNS && start.Name.Local == "RDF" {
				p.base = attrValue(start, "base", "http://www.w3.org/XML/1998/namespace")
				return p.parseNodeElements(start)
			}
			// A single node element without rdf:RDF wrapper is also legal.
			_, err := p.parseNodeElement(start)
			return err
		}
	}
}

type xparser struct {
	g        *store.Graph
	b        *store.Bulk // bulk writer: repeated subjects/predicates intern once
	dec      *xml.Decoder
	base     string
	bnodeSeq int
}

func (p *xparser) errf(format string, args ...any) error {
	return fmt.Errorf("rdfxml: "+format, args...)
}

func (p *xparser) fresh() rdf.Term {
	p.bnodeSeq++
	return rdf.NewBlank(fmt.Sprintf("x%d", p.bnodeSeq))
}

// resolve resolves a possibly-relative IRI reference against xml:base.
func (p *xparser) resolve(ref string) string {
	if ref == "" {
		return p.base
	}
	if strings.Contains(ref, "://") || strings.HasPrefix(ref, "urn:") {
		return ref
	}
	if strings.HasPrefix(ref, "#") {
		if i := strings.IndexByte(p.base, '#'); i >= 0 {
			return p.base[:i] + ref
		}
		return p.base + ref
	}
	if p.base == "" {
		return ref
	}
	if strings.HasSuffix(p.base, "/") || strings.HasSuffix(p.base, "#") {
		return p.base + ref
	}
	return p.base + "/" + ref
}

// parseNodeElements consumes children of rdf:RDF until its end element.
func (p *xparser) parseNodeElements(parent xml.StartElement) error {
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return p.errf("unterminated %s: %v", parent.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if _, err := p.parseNodeElement(t); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		}
	}
}

// parseNodeElement parses one resource description and returns its subject.
func (p *xparser) parseNodeElement(el xml.StartElement) (rdf.Term, error) {
	subject := p.subjectOf(el)
	// Typed node element: element name other than rdf:Description is the
	// type.
	if !(el.Name.Space == rdfXMLNS && el.Name.Local == "Description") {
		p.b.Add(subject, rdf.TypeIRI, rdf.NewIRI(el.Name.Space+el.Name.Local))
	}
	// Property attributes.
	for _, a := range el.Attr {
		if isSyntaxAttr(a) {
			continue
		}
		p.b.Add(subject, rdf.NewIRI(a.Name.Space+a.Name.Local), rdf.NewLiteral(a.Value))
	}
	// Property elements.
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return rdf.Term{}, p.errf("unterminated node element %s: %v", el.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if err := p.parsePropertyElement(subject, t); err != nil {
				return rdf.Term{}, err
			}
		case xml.EndElement:
			return subject, nil
		}
	}
}

func (p *xparser) subjectOf(el xml.StartElement) rdf.Term {
	if about := attrValue(el, "about", rdfXMLNS); about != "" {
		return rdf.NewIRI(p.resolve(about))
	}
	if id := attrValue(el, "ID", rdfXMLNS); id != "" {
		return rdf.NewIRI(p.resolve("#" + id))
	}
	if nid := attrValue(el, "nodeID", rdfXMLNS); nid != "" {
		return rdf.NewBlank(nid)
	}
	return p.fresh()
}

// parsePropertyElement parses one property of subject.
func (p *xparser) parsePropertyElement(subject rdf.Term, el xml.StartElement) error {
	pred := rdf.NewIRI(el.Name.Space + el.Name.Local)

	switch attrValue(el, "parseType", rdfXMLNS) {
	case "Resource":
		// Anonymous nested resource: properties directly inside.
		node := p.fresh()
		p.b.Add(subject, pred, node)
		for {
			tok, err := p.dec.Token()
			if err != nil {
				return p.errf("unterminated parseType=Resource: %v", err)
			}
			switch t := tok.(type) {
			case xml.StartElement:
				if err := p.parsePropertyElement(node, t); err != nil {
					return err
				}
			case xml.EndElement:
				return nil
			}
		}
	case "Collection":
		var members []rdf.Term
		for {
			tok, err := p.dec.Token()
			if err != nil {
				return p.errf("unterminated collection: %v", err)
			}
			switch t := tok.(type) {
			case xml.StartElement:
				m, err := p.parseNodeElement(t)
				if err != nil {
					return err
				}
				members = append(members, m)
			case xml.EndElement:
				head := rdf.NilIRI
				if len(members) > 0 {
					head = p.fresh()
					cur := head
					for i, m := range members {
						p.b.Add(cur, rdf.FirstIRI, m)
						if i == len(members)-1 {
							p.b.Add(cur, rdf.RestIRI, rdf.NilIRI)
						} else {
							next := p.fresh()
							p.b.Add(cur, rdf.RestIRI, next)
							cur = next
						}
					}
				}
				p.b.Add(subject, pred, head)
				return nil
			}
		}
	}

	// rdf:resource object.
	if res, ok := lookupAttr(el, "resource", rdfXMLNS); ok {
		p.b.Add(subject, pred, rdf.NewIRI(p.resolve(res)))
		return p.skipToEnd()
	}
	if nid, ok := lookupAttr(el, "nodeID", rdfXMLNS); ok {
		p.b.Add(subject, pred, rdf.NewBlank(nid))
		return p.skipToEnd()
	}

	datatype := attrValue(el, "datatype", rdfXMLNS)
	lang := attrValue(el, "lang", "http://www.w3.org/XML/1998/namespace")

	// Either text content (literal) or one nested node element.
	var text strings.Builder
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return p.errf("unterminated property %s: %v", el.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			text.Write(t)
		case xml.StartElement:
			node, err := p.parseNodeElement(t)
			if err != nil {
				return err
			}
			p.b.Add(subject, pred, node)
			return p.skipToEnd()
		case xml.EndElement:
			lex := text.String()
			var obj rdf.Term
			switch {
			case datatype != "":
				obj = rdf.NewTypedLiteral(lex, datatype)
			case lang != "":
				obj = rdf.NewLangLiteral(lex, lang)
			default:
				obj = rdf.NewLiteral(lex)
			}
			p.b.Add(subject, pred, obj)
			return nil
		}
	}
}

// skipToEnd consumes tokens until the current element's end tag.
func (p *xparser) skipToEnd() error {
	depth := 0
	for {
		tok, err := p.dec.Token()
		if err != nil {
			return p.errf("unterminated element: %v", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil
			}
			depth--
		}
	}
}

func attrValue(el xml.StartElement, local, space string) string {
	v, _ := lookupAttr(el, local, space)
	return v
}

func lookupAttr(el xml.StartElement, local, space string) (string, bool) {
	for _, a := range el.Attr {
		if a.Name.Local == local && (a.Name.Space == space || a.Name.Space == "") {
			if a.Name.Space == "" && local != "base" && local != "lang" {
				// Unprefixed attributes only match rdf:* forms like
				// about/resource when written without a namespace, which
				// some tools emit.
				if space != rdfXMLNS {
					continue
				}
			}
			return a.Value, true
		}
	}
	return "", false
}

func isSyntaxAttr(a xml.Attr) bool {
	if a.Name.Space == rdfXMLNS {
		return true
	}
	if a.Name.Space == "http://www.w3.org/XML/1998/namespace" {
		return true
	}
	if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
		return true
	}
	// Unprefixed rdf syntax attributes emitted by some serializers.
	switch a.Name.Local {
	case "about", "ID", "nodeID", "resource", "datatype", "parseType":
		return a.Name.Space == ""
	}
	return false
}

// Write serializes g as RDF/XML: one rdf:Description per subject, sorted.
// Each property element declares its namespace inline, trading verbosity
// for a serializer with no prefix-allocation state.
//
//feo:emit
func Write(w io.Writer, g *store.Graph) error {
	var b strings.Builder
	b.WriteString(xml.Header)
	b.WriteString(`<rdf:RDF xmlns:rdf="` + rdfXMLNS + `">` + "\n")
	for _, subj := range g.SubjectSet() {
		b.WriteString("  <rdf:Description")
		if subj.IsBlank() {
			b.WriteString(` rdf:nodeID="` + xmlEscape(subj.Value) + `"`)
		} else {
			b.WriteString(` rdf:about="` + xmlEscape(subj.Value) + `"`)
		}
		b.WriteString(">\n")
		triples := g.Match(subj, store.Wildcard, store.Wildcard)
		sort.Slice(triples, func(i, j int) bool {
			if c := rdf.Compare(triples[i].P, triples[j].P); c != 0 {
				return c < 0
			}
			return rdf.Compare(triples[i].O, triples[j].O) < 0
		})
		for _, t := range triples {
			ns, local := splitIRI(t.P.Value)
			open := `    <p:` + local + ` xmlns:p="` + xmlEscape(ns) + `"`
			switch {
			case t.O.IsIRI():
				b.WriteString(open + ` rdf:resource="` + xmlEscape(t.O.Value) + `"/>` + "\n")
			case t.O.IsBlank():
				b.WriteString(open + ` rdf:nodeID="` + xmlEscape(t.O.Value) + `"/>` + "\n")
			default:
				b.WriteString(open)
				if t.O.Lang != "" {
					b.WriteString(` xml:lang="` + xmlEscape(t.O.Lang) + `"`)
				} else if t.O.Datatype != "" && t.O.Datatype != rdf.XSDString {
					b.WriteString(` rdf:datatype="` + xmlEscape(t.O.Datatype) + `"`)
				}
				b.WriteString(">" + xmlEscape(t.O.Value) + "</p:" + local + ">\n")
			}
		}
		b.WriteString("  </rdf:Description>\n")
	}
	b.WriteString("</rdf:RDF>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// splitIRI splits an IRI into namespace and XML-name-safe local part.
func splitIRI(iri string) (ns, local string) {
	for i := len(iri) - 1; i >= 0; i-- {
		c := iri[i]
		if c == '#' || c == '/' || c == ':' {
			return iri[:i+1], iri[i+1:]
		}
	}
	return "", iri
}

func nsOf(iri string) string {
	ns, _ := splitIRI(iri)
	return ns
}

func xmlEscape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}
