package rdfxml

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func parseDoc(t *testing.T, doc string) *store.Graph {
	t.Helper()
	g, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, doc)
	}
	return g
}

func TestParseTypedNodeElement(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:food="http://purl.org/heals/food/">
  <food:Recipe rdf:about="http://e/curry"/>
</rdf:RDF>`)
	if !g.IsA(rdf.NewIRI("http://e/curry"), rdf.NewIRI("http://purl.org/heals/food/Recipe")) {
		t.Errorf("typed node element: %v", g.Triples())
	}
}

func TestParseProperties(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:feo="https://purl.org/heals/feo#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#">
  <rdf:Description rdf:about="http://e/curry">
    <feo:hasIngredient rdf:resource="http://e/cauliflower"/>
    <rdfs:label>Cauliflower Potato Curry</rdfs:label>
    <rdfs:comment xml:lang="fr">currie</rdfs:comment>
    <feo:calories rdf:datatype="http://www.w3.org/2001/XMLSchema#integer">500</feo:calories>
  </rdf:Description>
</rdf:RDF>`)
	curry := rdf.NewIRI("http://e/curry")
	if !g.Has(curry, rdf.NewIRI(rdf.FEONS+"hasIngredient"), rdf.NewIRI("http://e/cauliflower")) {
		t.Error("resource property missing")
	}
	if !g.Has(curry, rdf.LabelIRI, rdf.NewLiteral("Cauliflower Potato Curry")) {
		t.Error("plain literal missing")
	}
	if !g.Has(curry, rdf.CommentIRI, rdf.NewLangLiteral("currie", "fr")) {
		t.Error("lang literal missing")
	}
	if !g.Has(curry, rdf.NewIRI(rdf.FEONS+"calories"), rdf.NewInt(500)) {
		t.Error("typed literal missing")
	}
}

func TestParseNestedNodeElement(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:ex="http://e/">
  <rdf:Description rdf:about="http://e/s">
    <ex:knows>
      <ex:Person rdf:about="http://e/o"><ex:name>Bob</ex:name></ex:Person>
    </ex:knows>
  </rdf:Description>
</rdf:RDF>`)
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/knows"), rdf.NewIRI("http://e/o")) {
		t.Errorf("nested node: %v", g.Triples())
	}
	if !g.Has(rdf.NewIRI("http://e/o"), rdf.NewIRI("http://e/name"), rdf.NewLiteral("Bob")) {
		t.Error("nested node's own property missing")
	}
}

func TestParseParseTypeResource(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#">
  <rdf:Description rdf:about="http://e/C">
    <owl:equivalentClass rdf:parseType="Resource">
      <owl:onProperty rdf:resource="http://e/p"/>
      <owl:hasValue rdf:resource="http://e/v"/>
    </owl:equivalentClass>
  </rdf:Description>
</rdf:RDF>`)
	objs := g.Objects(rdf.NewIRI("http://e/C"), rdf.EquivClassIRI)
	if len(objs) != 1 || !objs[0].IsBlank() {
		t.Fatalf("parseType=Resource should create a bnode: %v", g.Triples())
	}
	if !g.Has(objs[0], rdf.NewIRI(rdf.OWLOnProperty), rdf.NewIRI("http://e/p")) {
		t.Error("nested property missing")
	}
}

func TestParseCollection(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:owl="http://www.w3.org/2002/07/owl#">
  <rdf:Description rdf:about="http://e/Fact">
    <owl:intersectionOf rdf:parseType="Collection">
      <rdf:Description rdf:about="http://e/A"/>
      <rdf:Description rdf:about="http://e/B"/>
    </owl:intersectionOf>
  </rdf:Description>
</rdf:RDF>`)
	head := g.FirstObject(rdf.NewIRI("http://e/Fact"), rdf.NewIRI(rdf.OWLIntersectionOf))
	members, ok := g.ReadList(head)
	if !ok || len(members) != 2 {
		t.Fatalf("collection = %v ok=%v\n%v", members, ok, g.Triples())
	}
	if members[0] != rdf.NewIRI("http://e/A") {
		t.Errorf("collection order: %v", members)
	}
}

func TestParseBaseAndID(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:ex="http://e/"
         xml:base="http://example.org/onto">
  <rdf:Description rdf:ID="thing">
    <ex:p rdf:resource="#other"/>
  </rdf:Description>
</rdf:RDF>`)
	if !g.Has(rdf.NewIRI("http://example.org/onto#thing"),
		rdf.NewIRI("http://e/p"),
		rdf.NewIRI("http://example.org/onto#other")) {
		t.Errorf("base/ID resolution: %v", g.Triples())
	}
}

func TestParseNodeID(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:ex="http://e/">
  <rdf:Description rdf:nodeID="b1"><ex:p>v</ex:p></rdf:Description>
  <rdf:Description rdf:about="http://e/s"><ex:q rdf:nodeID="b1"/></rdf:Description>
</rdf:RDF>`)
	b := rdf.NewBlank("b1")
	if !g.Has(b, rdf.NewIRI("http://e/p"), rdf.NewLiteral("v")) {
		t.Error("nodeID subject missing")
	}
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/q"), b) {
		t.Error("nodeID object missing")
	}
}

func TestParsePropertyAttributes(t *testing.T) {
	g := parseDoc(t, `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:ex="http://e/">
  <ex:Person rdf:about="http://e/alice" ex:name="Alice"/>
</rdf:RDF>`)
	if !g.Has(rdf.NewIRI("http://e/alice"), rdf.NewIRI("http://e/name"), rdf.NewLiteral("Alice")) {
		t.Errorf("property attribute: %v", g.Triples())
	}
}

func TestParseErrors(t *testing.T) {
	for _, doc := range []string{
		``,
		`<foo`,
		`<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">`,
		`plain text`,
	} {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("expected error for %q", doc)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	src := `
@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s a ex:Class ;
    ex:p "lit", "fr"@fr, "5"^^xsd:integer ;
    ex:q <http://other/iri> ;
    ex:r _:b .
_:b ex:inner ex:s .
`
	g, err := turtle.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if !store.Isomorphic(g, g2) {
		t.Errorf("round trip not isomorphic.\nXML:\n%s\noriginal: %v\nreparsed: %v",
			sb.String(), g.Triples(), g2.Triples())
	}
}

// TestOntologyThroughRDFXML pushes the whole FEO TBox through the RDF/XML
// writer and parser and checks isomorphism — the Protégé-interchange
// scenario.
func TestOntologyThroughRDFXML(t *testing.T) {
	// Use a representative slice of FEO spelled in Turtle.
	src := `
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix feo:  <https://purl.org/heals/feo#> .
feo:Characteristic a owl:Class .
feo:Parameter a owl:Class ; rdfs:subClassOf feo:Characteristic .
feo:hasCharacteristic a owl:ObjectProperty , owl:TransitiveProperty ;
    owl:inverseOf feo:isCharacteristicOf .
feo:SeasonCharacteristic rdfs:subClassOf feo:Characteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue false ] .
`
	g, err := turtle.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !store.Isomorphic(g, g2) {
		t.Errorf("FEO slice lost through RDF/XML:\n%s", sb.String())
	}
}

func TestSplitIRI(t *testing.T) {
	for iri, want := range map[string][2]string{
		"http://e/a#b": {"http://e/a#", "b"},
		"http://e/a/b": {"http://e/a/", "b"},
		"urn:x:y":      {"urn:x:", "y"},
		"plain":        {"", "plain"},
	} {
		ns, local := splitIRI(iri)
		if ns != want[0] || local != want[1] {
			t.Errorf("splitIRI(%q) = (%q,%q), want (%q,%q)", iri, ns, local, want[0], want[1])
		}
	}
}
