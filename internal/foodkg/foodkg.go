// Package foodkg generates a synthetic food knowledge graph in the shape of
// FoodKG (Haussmann et al., ISWC 2019), the substrate the paper builds on.
//
// The real FoodKG aggregates Recipe1M, USDA nutrition data, and FoodOn into
// ~67M triples; it is external data this reproduction cannot ship. The
// generator substitutes a seeded, deterministic KG with the same structure
// FEO consumes: recipes with ingredients, seasonal and regional
// availability, diets, nutrients, costs, and users with likes, dislikes,
// allergies, goals, and conditions. Scale is a parameter, which is what the
// scaling benchmarks sweep (experiment A3 in DESIGN.md).
package foodkg

import (
	"fmt"
	"math/rand"

	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Config controls generator scale and shape. The zero value is not valid;
// use DefaultConfig.
type Config struct {
	Seed            int64
	Recipes         int
	Ingredients     int // size of the ingredient pool
	Users           int
	MinIngredients  int // per recipe
	MaxIngredients  int
	SeasonalShare   float64 // fraction of ingredients with a season
	RegionalShare   float64 // fraction of ingredients tied to a region
	LikesPerUser    int
	DislikesPerUser int
	AllergyRate     float64 // probability a user has ≥1 allergy
	ConditionRate   float64 // probability a user has a health condition
}

// DefaultConfig returns a laptop-scale configuration (about 10k triples
// after reasoning).
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Recipes:         200,
		Ingredients:     120,
		Users:           25,
		MinIngredients:  3,
		MaxIngredients:  8,
		SeasonalShare:   0.4,
		RegionalShare:   0.3,
		LikesPerUser:    4,
		DislikesPerUser: 2,
		AllergyRate:     0.35,
		ConditionRate:   0.2,
	}
}

// KG is a generated knowledge graph plus handles to its entities.
type KG struct {
	Graph       *store.Graph
	Recipes     []rdf.Term
	Ingredients []rdf.Term
	Users       []rdf.Term
	Seasons     []rdf.Term
	Regions     []rdf.Term
	Diets       []rdf.Term
	Conditions  []rdf.Term
	System      rdf.Term
	// CurrentSeason is the system's season (one of Seasons).
	CurrentSeason rdf.Term
	// Region is the system's location.
	Region rdf.Term
}

// Seasons, regions, diets, conditions, nutrients, and name fragments used
// to synthesize plausible entities.
var (
	seasonNames    = []string{"Spring", "Summer", "Autumn", "Winter"}
	regionNames    = []string{"Northeast", "Southeast", "Midwest", "Southwest", "PacificNorthwest"}
	dietNames      = []string{"Vegan", "Vegetarian", "Pescatarian", "GlutenFree", "Keto", "LowSodium"}
	conditionNames = []string{"Pregnancy", "Diabetes", "Hypertension", "CeliacDisease"}
	nutrientNames  = []string{"Protein", "Fiber", "Iron", "FolicAcid", "VitaminC", "Calcium", "Omega3"}
	ingredientBase = []string{
		"Cauliflower", "Potato", "Broccoli", "Squash", "Spinach", "Kale", "Carrot",
		"Onion", "Garlic", "Tomato", "Pepper", "Mushroom", "Lentil", "Chickpea",
		"Rice", "Quinoa", "Pasta", "Tofu", "Chicken", "Salmon", "Shrimp", "Beef",
		"Egg", "Cheddar", "Mozzarella", "Yogurt", "Almond", "Walnut", "Apple",
		"Pear", "Lemon", "Ginger", "Basil", "Cilantro", "Cumin", "Turmeric",
	}
	dishForms = []string{"Curry", "Soup", "Salad", "Stew", "Bowl", "Frittata",
		"Bake", "StirFry", "Tacos", "Risotto", "Pilaf", "Gratin"}
)

// Generate builds a knowledge graph per cfg. The same seed always yields
// the same graph (triple-for-triple), which the benchmarks and golden tests
// rely on.
func Generate(cfg Config) *KG {
	rng := rand.New(rand.NewSource(cfg.Seed))
	kg := &KG{Graph: store.New()}
	g := kg.Graph
	ns := rdf.KGNS

	term := func(name string) rdf.Term { return rdf.NewIRI(ns + name) }

	for _, s := range seasonNames {
		t := term("season/" + s)
		g.Add(t, rdf.TypeIRI, ontology.FoodSeason)
		g.Add(t, rdf.LabelIRI, rdf.NewLiteral(s))
		kg.Seasons = append(kg.Seasons, t)
	}
	for _, r := range regionNames {
		t := term("region/" + r)
		g.Add(t, rdf.TypeIRI, ontology.FoodRegion)
		g.Add(t, rdf.LabelIRI, rdf.NewLiteral(r))
		kg.Regions = append(kg.Regions, t)
	}
	for _, d := range dietNames {
		t := term("diet/" + d)
		g.Add(t, rdf.TypeIRI, ontology.FoodDiet)
		g.Add(t, rdf.LabelIRI, rdf.NewLiteral(d))
		kg.Diets = append(kg.Diets, t)
	}
	for _, c := range conditionNames {
		t := term("condition/" + c)
		g.Add(t, rdf.TypeIRI, ontology.FEOCondition)
		g.Add(t, rdf.LabelIRI, rdf.NewLiteral(c))
		kg.Conditions = append(kg.Conditions, t)
	}
	var nutrients []rdf.Term
	for _, n := range nutrientNames {
		t := term("nutrient/" + n)
		g.Add(t, rdf.TypeIRI, ontology.FoodNutrient)
		g.Add(t, rdf.LabelIRI, rdf.NewLiteral(n))
		nutrients = append(nutrients, t)
	}

	// Ingredient pool with optional season/region availability and nutrients.
	for i := 0; i < cfg.Ingredients; i++ {
		name := fmt.Sprintf("%s%d", ingredientBase[i%len(ingredientBase)], i/len(ingredientBase))
		t := term("ingredient/" + name)
		g.Add(t, rdf.TypeIRI, ontology.FoodIngredient)
		g.Add(t, rdf.LabelIRI, rdf.NewLiteral(name))
		if rng.Float64() < cfg.SeasonalShare {
			g.Add(t, ontology.FEOAvailableIn, kg.Seasons[rng.Intn(len(kg.Seasons))])
		}
		if rng.Float64() < cfg.RegionalShare {
			g.Add(t, ontology.FEOAvailableInRegion, kg.Regions[rng.Intn(len(kg.Regions))])
		}
		for _, n := range pick(rng, nutrients, 1+rng.Intn(3)) {
			g.Add(t, ontology.FEOHasNutrient, n)
		}
		kg.Ingredients = append(kg.Ingredients, t)
	}

	// Recipes composed from the pool.
	for i := 0; i < cfg.Recipes; i++ {
		span := cfg.MaxIngredients - cfg.MinIngredients + 1
		n := cfg.MinIngredients + rng.Intn(span)
		ings := pick(rng, kg.Ingredients, n)
		main := ings[0]
		name := fmt.Sprintf("%s%s%d", labelOf(g, main), dishForms[rng.Intn(len(dishForms))], i)
		t := term("recipe/" + name)
		g.Add(t, rdf.TypeIRI, ontology.FoodRecipe)
		g.Add(t, rdf.LabelIRI, rdf.NewLiteral(name))
		for _, ing := range ings {
			g.Add(t, ontology.FEOHasIngredient, ing)
		}
		if rng.Float64() < 0.5 {
			g.Add(t, ontology.FEOCompatibleWithDiet, kg.Diets[rng.Intn(len(kg.Diets))])
		}
		g.Add(t, ontology.FoodCalories, rdf.NewInt(int64(150+rng.Intn(700))))
		g.Add(t, ontology.FoodProtein, rdf.NewInt(int64(2+rng.Intn(40))))
		g.Add(t, ontology.FoodCostLevel, rdf.NewInt(int64(1+rng.Intn(3))))
		kg.Recipes = append(kg.Recipes, t)
	}

	// Users with preferences.
	for i := 0; i < cfg.Users; i++ {
		t := term(fmt.Sprintf("user/u%03d", i))
		g.Add(t, rdf.TypeIRI, ontology.FoodUser)
		for _, r := range pick(rng, kg.Recipes, min(cfg.LikesPerUser, len(kg.Recipes))) {
			g.Add(t, ontology.FEOLike, r)
		}
		for _, r := range pick(rng, kg.Recipes, min(cfg.DislikesPerUser, len(kg.Recipes))) {
			g.Add(t, ontology.FEODislike, r)
		}
		if rng.Float64() < cfg.AllergyRate {
			for _, ing := range pick(rng, kg.Ingredients, 1+rng.Intn(2)) {
				g.Add(t, ontology.FEOAllergicTo, ing)
			}
		}
		if rng.Float64() < cfg.ConditionRate {
			g.Add(t, ontology.FEOHasCondition, kg.Conditions[rng.Intn(len(kg.Conditions))])
		}
		if rng.Float64() < 0.4 {
			g.Add(t, ontology.FEOHasDiet, kg.Diets[rng.Intn(len(kg.Diets))])
		}
		kg.Users = append(kg.Users, t)
	}

	// The system context: one Health-Coach-like system with a current
	// season and region.
	kg.System = term("system/healthcoach")
	kg.CurrentSeason = kg.Seasons[rng.Intn(len(kg.Seasons))]
	kg.Region = kg.Regions[rng.Intn(len(kg.Regions))]
	g.Add(kg.System, rdf.TypeIRI, ontology.EOSystem)
	g.Add(kg.System, ontology.FEOHasSeason, kg.CurrentSeason)
	g.Add(kg.System, ontology.FEOLocatedIn, kg.Region)

	return kg
}

// labelOf returns the rdfs:label of t or its local name.
func labelOf(g *store.Graph, t rdf.Term) string {
	if l := g.FirstObject(t, rdf.LabelIRI); l.IsValid() {
		return l.Value
	}
	return t.Value
}

// pick selects n distinct elements (deterministically for a given rng).
func pick(rng *rand.Rand, pool []rdf.Term, n int) []rdf.Term {
	if n >= len(pool) {
		out := make([]rdf.Term, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]rdf.Term, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
