package foodkg

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
)

func TestGenerateCounts(t *testing.T) {
	cfg := DefaultConfig()
	kg := Generate(cfg)
	if len(kg.Recipes) != cfg.Recipes {
		t.Errorf("recipes = %d, want %d", len(kg.Recipes), cfg.Recipes)
	}
	if len(kg.Ingredients) != cfg.Ingredients {
		t.Errorf("ingredients = %d, want %d", len(kg.Ingredients), cfg.Ingredients)
	}
	if len(kg.Users) != cfg.Users {
		t.Errorf("users = %d, want %d", len(kg.Users), cfg.Users)
	}
	if kg.Graph.Len() == 0 {
		t.Fatal("empty graph")
	}
	if !kg.CurrentSeason.IsValid() || !kg.System.IsValid() {
		t.Error("system context missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if !a.Graph.Equal(b.Graph) {
		t.Error("same seed must generate identical graphs")
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c := Generate(cfg)
	if a.Graph.Equal(c.Graph) {
		t.Error("different seeds should generate different graphs")
	}
}

func TestRecipeShape(t *testing.T) {
	cfg := DefaultConfig()
	kg := Generate(cfg)
	for _, r := range kg.Recipes[:20] {
		n := kg.Graph.Count(r, ontology.FEOHasIngredient, store.Wildcard)
		if n < cfg.MinIngredients || n > cfg.MaxIngredients {
			t.Errorf("recipe %v has %d ingredients, want %d..%d", r, n, cfg.MinIngredients, cfg.MaxIngredients)
		}
		if !kg.Graph.IsA(r, ontology.FoodRecipe) {
			t.Errorf("recipe %v missing type", r)
		}
		if kg.Graph.Count(r, ontology.FoodCalories, store.Wildcard) != 1 {
			t.Errorf("recipe %v missing calories", r)
		}
	}
}

func TestUsersHavePreferences(t *testing.T) {
	kg := Generate(DefaultConfig())
	anyAllergy := false
	for _, u := range kg.Users {
		if kg.Graph.Count(u, ontology.FEOLike, store.Wildcard) == 0 {
			t.Errorf("user %v has no likes", u)
		}
		if kg.Graph.Exists(u, ontology.FEOAllergicTo, store.Wildcard) {
			anyAllergy = true
		}
	}
	if !anyAllergy {
		t.Error("with AllergyRate=0.35 and 25 users, some user should have an allergy")
	}
}

func TestKGReasonsWithFEO(t *testing.T) {
	// Generated data must classify under the FEO TBox exactly like the CQ
	// datasets do: current season becomes a SeasonCharacteristic, liked
	// recipes become LikedFoodCharacteristic, allergies become foils'
	// AllergicFoodCharacteristic.
	cfg := DefaultConfig()
	cfg.Recipes, cfg.Ingredients, cfg.Users = 40, 30, 8
	kg := Generate(cfg)
	g := ontology.TBox()
	g.Merge(kg.Graph)
	reasoner.New(reasoner.Options{}).Materialize(g)

	if !g.IsA(kg.CurrentSeason, ontology.FEOSeason) {
		t.Error("current season should classify as SeasonCharacteristic")
	}
	if !g.IsA(kg.CurrentSeason, ontology.FEOEcosystem) {
		t.Error("current season should be an EcosystemCharacteristic")
	}
	likedFound := false
	for _, u := range kg.Users {
		for _, liked := range g.Objects(u, ontology.FEOLike) {
			if g.IsA(liked, ontology.FEOLikedFood) {
				likedFound = true
			}
		}
	}
	if !likedFound {
		t.Error("liked recipes should classify as LikedFoodCharacteristic")
	}
	for _, u := range kg.Users {
		for _, a := range g.Objects(u, ontology.FEOAllergicTo) {
			if !g.IsA(a, ontology.FEOAllergicFood) {
				t.Errorf("allergen %v should be AllergicFoodCharacteristic", a)
			}
			if !g.IsA(a, ontology.FEOOpposing) {
				t.Errorf("allergen %v should be Opposing", a)
			}
		}
	}
}

func TestScaleKnobs(t *testing.T) {
	small := Config{Seed: 3, Recipes: 5, Ingredients: 10, Users: 2,
		MinIngredients: 2, MaxIngredients: 3, LikesPerUser: 1, DislikesPerUser: 1}
	kg := Generate(small)
	if len(kg.Recipes) != 5 || len(kg.Users) != 2 {
		t.Error("small config not honored")
	}
	// Likes capped by available recipes.
	tiny := small
	tiny.LikesPerUser = 100
	kg2 := Generate(tiny)
	u := kg2.Users[0]
	if kg2.Graph.Count(u, ontology.FEOLike, store.Wildcard) > 5 {
		t.Error("likes must be capped at recipe count")
	}
}

func TestLabelOfFallsBack(t *testing.T) {
	g := store.New()
	anon := rdf.NewIRI("http://e/unlabeled")
	if got := labelOf(g, anon); got != "http://e/unlabeled" {
		t.Errorf("labelOf fallback = %q", got)
	}
}
