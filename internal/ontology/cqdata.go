package ontology

import "repro/internal/rdf"

// Instance IRIs used by the competency-question datasets and the
// explanation engine. The paper places question and food instances in the
// feo namespace (Listings 1-3 and their result tables).
var (
	// CQ1 — contextual: "Why should I eat Cauliflower Potato Curry?"
	QWhyEatCauliflowerPotatoCurry = rdf.NewIRI(rdf.FEONS + "WhyEatCauliflowerPotatoCurry")
	CauliflowerPotatoCurry        = rdf.NewIRI(rdf.FEONS + "CauliflowerPotatoCurry")
	Cauliflower                   = rdf.NewIRI(rdf.FEONS + "Cauliflower")
	Potato                        = rdf.NewIRI(rdf.FEONS + "Potato")
	Autumn                        = rdf.NewIRI(rdf.FEONS + "Autumn")
	Northeast                     = rdf.NewIRI(rdf.FEONS + "Northeast")
	HealthCoach                   = rdf.NewIRI(rdf.FEONS + "HealthCoach")

	// CQ2 — contrastive: "Why Butternut Squash Soup over Broccoli Cheddar?"
	QWhyEatButternutOverBroccoli = rdf.NewIRI(rdf.FEONS + "WhyEatButternutSquashSoupOverBroccoliCheddarSoup")
	ButternutSquashSoup          = rdf.NewIRI(rdf.FEONS + "ButternutSquashSoup")
	BroccoliCheddarSoup          = rdf.NewIRI(rdf.FEONS + "BroccoliCheddarSoup")
	ButternutSquash              = rdf.NewIRI(rdf.FEONS + "ButternutSquash")
	Broccoli                     = rdf.NewIRI(rdf.FEONS + "Broccoli")
	Cheddar                      = rdf.NewIRI(rdf.FEONS + "Cheddar")

	// CQ3 — counterfactual: "What if I was pregnant?"
	QWhatIfIWasPregnant = rdf.NewIRI(rdf.FEONS + "WhatIfIWasPregnant")
	Pregnancy           = rdf.NewIRI(rdf.FEONS + "Pregnancy")
	Sushi               = rdf.NewIRI(rdf.FEONS + "Sushi")
	RawFish             = rdf.NewIRI(rdf.FEONS + "RawFish")
	Rice                = rdf.NewIRI(rdf.FEONS + "Rice")
	Spinach             = rdf.NewIRI(rdf.FEONS + "Spinach")
	SpinachFrittata     = rdf.NewIRI(rdf.FEONS + "SpinachFrittata")
	Egg                 = rdf.NewIRI(rdf.FEONS + "Egg")
	FolicAcid           = rdf.NewIRI(rdf.FEONS + "FolicAcid")

	// Users.
	User1 = rdf.NewIRI(rdf.FEONS + "User1")
	User2 = rdf.NewIRI(rdf.FEONS + "User2")
	User3 = rdf.NewIRI(rdf.FEONS + "User3")
)

// cq1TTL is the ABox for competency question 1 (Listing 1). The Health
// Coach recommended Cauliflower Potato Curry; the contextual explanation
// should surface the season: cauliflower is available in autumn, and autumn
// is the system's current season.
const cq1TTL = `
@prefix eo:   <https://purl.org/heals/eo#> .
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .

feo:WhyEatCauliflowerPotatoCurry a feo:FoodQuestion , eo:ContextualExplanation ;
    feo:hasParameter feo:CauliflowerPotatoCurry .

feo:CauliflowerPotatoCurry a food:Recipe ;
    feo:hasIngredient feo:Cauliflower , feo:Potato .
feo:Cauliflower a food:Ingredient ; feo:availableIn feo:Autumn .
feo:Potato a food:Ingredient .
feo:Autumn a food:Season .
feo:Northeast a food:Region .

feo:HealthCoach a eo:System ;
    feo:hasSeason feo:Autumn ;
    feo:locatedIn feo:Northeast ;
    eo:recommends feo:CauliflowerPotatoCurry .

feo:User1 a food:User ; feo:like feo:DalCurry .
feo:DalCurry a food:Recipe .
`

// cq2TTL is the ABox for competency question 2 (Listing 2). The user likes
// Broccoli Cheddar Soup but is allergic to broccoli; the system recommends
// Butternut Squash Soup, whose squash is in season.
const cq2TTL = `
@prefix eo:   <https://purl.org/heals/eo#> .
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .

feo:WhyEatButternutSquashSoupOverBroccoliCheddarSoup
    a feo:FoodQuestion , eo:ContrastiveExplanation ;
    feo:hasPrimaryParameter feo:ButternutSquashSoup ;
    feo:hasSecondaryParameter feo:BroccoliCheddarSoup .

feo:ButternutSquashSoup a food:Recipe ; feo:hasIngredient feo:ButternutSquash .
feo:BroccoliCheddarSoup a food:Recipe ; feo:hasIngredient feo:Broccoli , feo:Cheddar .
feo:ButternutSquash a food:Ingredient ; feo:availableIn feo:Autumn .
feo:Broccoli a food:Ingredient .
feo:Cheddar a food:Ingredient .
feo:Autumn a food:Season .

feo:HealthCoach a eo:System ;
    feo:hasSeason feo:Autumn ;
    eo:recommends feo:ButternutSquashSoup .

feo:User2 a food:User ;
    feo:like feo:BroccoliCheddarSoup ;
    feo:allergicTo feo:Broccoli .
`

// cq3TTL is the ABox for competency question 3 (Listing 3). The system
// recommended sushi; the counterfactual asks what changes if the user were
// pregnant. Domain knowledge: pregnancy forbids raw fish (and therefore,
// via the forbids∘isIngredientOf property chain, sushi) and recommends
// folate-rich spinach; the frittata surfaces through isIngredientOf.
const cq3TTL = `
@prefix eo:   <https://purl.org/heals/eo#> .
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .

feo:WhatIfIWasPregnant a feo:FoodQuestion , eo:CounterfactualExplanation ;
    feo:hasParameter feo:Pregnancy .

feo:Pregnancy a feo:ConditionCharacteristic ;
    feo:forbids feo:RawFish ;
    feo:recommends feo:Spinach .

feo:Sushi a food:Recipe ; feo:hasIngredient feo:RawFish , feo:Rice .
feo:RawFish a food:Ingredient .
feo:Rice a food:Ingredient .

feo:Spinach a food:Ingredient , food:Food ; feo:hasNutrient feo:FolicAcid .
feo:FolicAcid a food:Nutrient .
feo:SpinachFrittata a food:Recipe ; feo:hasIngredient feo:Spinach , feo:Egg .
feo:Egg a food:Ingredient .

feo:HealthCoach a eo:System ; eo:recommends feo:Sushi .
feo:User3 a food:User .

# Scientific evidence backing the pregnancy knowledge (paper §V-C: "the
# system has additional knowledge that foods high in folic acid are
# recommended for pregnancy").
feo:FolateStudy a eo:ScientificKnowledge ;
    eo:evidenceFor feo:FolicAcid , feo:Spinach ;
    eo:citesSource "CDC folic acid guidance for pregnancy (2020)" .
feo:RawFishAdvisory a eo:ScientificKnowledge ;
    eo:evidenceFor feo:RawFish ;
    eo:citesSource "FDA advice on fish consumption during pregnancy (2019)" .
`
