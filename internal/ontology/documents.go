package ontology

// eoTTL is the Explanation Ontology subset FEO extends (Chari et al., ISWC
// 2020). It contributes the explanation-type taxonomy of Table I, the
// question/recommendation scaffolding, and the eo:knowledge bookkeeping
// class whose subclasses the paper's queries exclude from user-facing
// results. eo:Fact and eo:Foil are declared here; their equivalent-class
// definitions live in the FEO document (Figure 3).
const eoTTL = `
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix eo:   <https://purl.org/heals/eo#> .

eo: a owl:Ontology ; rdfs:label "Explanation Ontology (subset)" .

eo:Explanation a owl:Class ; rdfs:label "Explanation" .
eo:Question a owl:Class ; rdfs:label "Question" .
eo:Recommendation a owl:Class ; rdfs:label "Recommendation" .
eo:SystemRecommendation a owl:Class ; rdfs:subClassOf eo:Recommendation .
eo:System a owl:Class ; rdfs:label "AI System" .
eo:User a owl:Class ; rdfs:label "End User" .

# Bookkeeping root: classes used to assemble explanations but not shown to
# users. The paper's listings filter subclasses of eo:knowledge out of
# results.
eo:knowledge a owl:Class ; rdfs:label "knowledge" .
eo:Fact a owl:Class ; rdfs:subClassOf eo:knowledge ; rdfs:label "Fact" .
eo:Foil a owl:Class ; rdfs:subClassOf eo:knowledge ; rdfs:label "Foil" .
eo:ObjectRecord a owl:Class ; rdfs:subClassOf eo:knowledge .
eo:KnowledgeRecord a owl:Class ; rdfs:subClassOf eo:knowledge .

# The nine literature-derived explanation types of Table I.
eo:CaseBasedExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "What results from other users recommend food A?" .
eo:ContextualExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "Why should I eat Food A?" .
eo:ContrastiveExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "Why was Food A recommended over Food B?" .
eo:CounterfactualExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "What if we changed ingredient C?" .
eo:EverydayExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "What foods go together?" .
eo:ScientificExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "What literature recommends Food A?" .
eo:SimulationBasedExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "What if I ate food A everyday?" .
eo:StatisticalExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "What evidence from data suggests I follow diet D?" .
eo:TraceBasedExplanation a owl:Class ; rdfs:subClassOf eo:Explanation ;
    rdfs:comment "What steps led to recommendation E?" .

# Evidence scaffolding for scientific/statistical explanations (paper §VI:
# "we plan to use scientific knowledge from papers and studies as evidence").
eo:ScientificKnowledge a owl:Class ; rdfs:subClassOf eo:KnowledgeRecord .
eo:evidenceFor a owl:ObjectProperty ; rdfs:domain eo:ScientificKnowledge .
eo:citesSource a owl:DatatypeProperty ; rdfs:domain eo:ScientificKnowledge .

eo:addresses a owl:ObjectProperty ; rdfs:domain eo:Explanation ; rdfs:range eo:Question .
eo:explains a owl:ObjectProperty ; rdfs:domain eo:Explanation ; rdfs:range eo:Recommendation .
eo:usesKnowledge a owl:ObjectProperty ; rdfs:domain eo:Explanation .
eo:hasExplanation a owl:ObjectProperty ; rdfs:range eo:Explanation .
eo:recommends a owl:ObjectProperty ; rdfs:domain eo:System .
eo:generatedBy a owl:ObjectProperty ; rdfs:range eo:System .
eo:basedOnEvidence a owl:ObjectProperty ; rdfs:domain eo:Explanation .
`

// feoTTL is the Food Explanation Ontology — the paper's contribution.
//
// Figure 1: feo:Characteristic with subclasses feo:Parameter,
// feo:UserCharacteristic (liked/disliked/allergic foods, diet, condition,
// goal, budget) and feo:SystemCharacteristic (season, location, time).
//
// Figure 2: the property lattice. feo:hasCharacteristic is transitive with
// inverse feo:isCharacteristicOf; feo:forbids demonstrates the paper's
// multiple inheritance, being a sub-property of BOTH feo:isOpposedBy and
// feo:isCharacteristicOf; feo:dislike/feo:dislikedBy demonstrate
// owl:inverseOf-driven inference.
//
// Figure 3: eo:Fact ≡ parameter-characteristic ⊓ ecosystem-characteristic ⊓
// supportive; eo:Foil ≡ parameter-characteristic ⊓ ecosystem-characteristic
// ⊓ opposing. (The figure's second foil branch — supportive but absent from
// the ecosystem — requires negation-as-failure and is computed by the
// explanation engine with FILTER NOT EXISTS, see DESIGN.md.)
//
// feo:isInternal flags characteristics as food-domain (internal) versus
// external; contextual explanations only surface external characteristics.
const feoTTL = `
@prefix rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix xsd:  <http://www.w3.org/2001/XMLSchema#> .
@prefix eo:   <https://purl.org/heals/eo#> .
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .

feo: a owl:Ontology ; rdfs:label "Food Explanation Ontology" .

###########################################################################
# Figure 1 — the characteristic hierarchy
###########################################################################

feo:Characteristic a owl:Class ; rdfs:label "Characteristic" .

feo:Parameter a owl:Class ;
    rdfs:subClassOf feo:Characteristic ;
    rdfs:comment "An entity of interest in a user question." .

feo:UserCharacteristic a owl:Class ;
    rdfs:subClassOf feo:Characteristic .
feo:SystemCharacteristic a owl:Class ;
    rdfs:subClassOf feo:Characteristic .

feo:LikedFoodCharacteristic a owl:Class ;
    rdfs:subClassOf feo:UserCharacteristic , feo:SupportiveCharacteristic ;
    owl:equivalentClass [ a owl:Restriction ;
        owl:onProperty feo:likedBy ; owl:someValuesFrom food:User ] .
feo:DislikedFoodCharacteristic a owl:Class ;
    rdfs:subClassOf feo:UserCharacteristic , feo:OpposingCharacteristic ;
    owl:equivalentClass [ a owl:Restriction ;
        owl:onProperty feo:dislikedBy ; owl:someValuesFrom food:User ] .
feo:AllergicFoodCharacteristic a owl:Class ;
    rdfs:subClassOf feo:UserCharacteristic , feo:OpposingCharacteristic .
feo:DietCharacteristic a owl:Class ; rdfs:subClassOf feo:UserCharacteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue true ] .
feo:ConditionCharacteristic a owl:Class ; rdfs:subClassOf feo:UserCharacteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue false ] .
feo:GoalCharacteristic a owl:Class ; rdfs:subClassOf feo:UserCharacteristic ,
    feo:SupportiveCharacteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue false ] .
feo:BudgetCharacteristic a owl:Class ; rdfs:subClassOf feo:UserCharacteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue false ] .

feo:SeasonCharacteristic a owl:Class ;
    rdfs:subClassOf feo:SystemCharacteristic , feo:SupportiveCharacteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue false ] ;
    rdfs:comment "The current season for the region the system is in." .
feo:LocationCharacteristic a owl:Class ;
    rdfs:subClassOf feo:SystemCharacteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue false ] .
feo:TimeCharacteristic a owl:Class ;
    rdfs:subClassOf feo:SystemCharacteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue false ] .

feo:NutrientCharacteristic a owl:Class ;
    rdfs:subClassOf feo:Characteristic ,
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue true ] .

###########################################################################
# Figure 3 — classification classes (bookkeeping, under eo:knowledge)
###########################################################################

feo:EcosystemCharacteristic a owl:Class ;
    rdfs:subClassOf eo:knowledge ;
    owl:unionOf ( feo:UserCharacteristic feo:SystemCharacteristic ) ;
    rdfs:comment "Characteristics present in the user or system realm." .

feo:ParameterCharacteristic a owl:Class ;
    rdfs:subClassOf eo:knowledge ;
    owl:equivalentClass [ a owl:Restriction ;
        owl:onProperty feo:isCharacteristicOf ; owl:someValuesFrom feo:Parameter ] ;
    rdfs:comment "Characteristics of some question parameter." .

# Supportive/Opposing are orientation classes for fact/foil assembly. They
# must NOT sit under eo:knowledge: concrete characteristic classes
# (SeasonCharacteristic, LikedFoodCharacteristic, ...) subclass them, and
# the knowledge filter in the paper's queries is transitive.
feo:SupportiveCharacteristic a owl:Class .
[ a owl:Restriction ; owl:onProperty feo:isSupportiveOf ;
  owl:someValuesFrom owl:Thing ] rdfs:subClassOf feo:SupportiveCharacteristic .

feo:OpposingCharacteristic a owl:Class .
[ a owl:Restriction ; owl:onProperty feo:isOpposedBy ;
  owl:someValuesFrom owl:Thing ] rdfs:subClassOf feo:OpposingCharacteristic .

# Facts support a parameter and match the ecosystem; foils oppose a
# parameter and match the ecosystem (Figure 3's green and red cells).
eo:Fact owl:intersectionOf ( feo:ParameterCharacteristic
                             feo:EcosystemCharacteristic
                             feo:SupportiveCharacteristic ) .
eo:Foil owl:intersectionOf ( feo:ParameterCharacteristic
                             feo:EcosystemCharacteristic
                             feo:OpposingCharacteristic ) .

###########################################################################
# Figure 2 — the property lattice
###########################################################################

feo:hasCharacteristic a owl:ObjectProperty , owl:TransitiveProperty ;
    owl:inverseOf feo:isCharacteristicOf ;
    rdfs:comment "Transitive: characteristics are queryable at all depths." .
feo:isCharacteristicOf a owl:ObjectProperty .

feo:hasSupportiveCharacteristic a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:hasCharacteristic ;
    owl:inverseOf feo:isSupportiveOf .
feo:isSupportiveOf a owl:ObjectProperty .

feo:hasOpposingCharacteristic a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:hasCharacteristic ;
    owl:inverseOf feo:isOpposedBy .
feo:isOpposedBy a owl:ObjectProperty .

# The paper's flagship multiple-inheritance example: forbids is a
# sub-property of BOTH isOpposedBy and isCharacteristicOf.
feo:forbids a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:isOpposedBy , feo:isCharacteristicOf ;
    owl:propertyChainAxiom ( feo:forbids feo:isIngredientOf ) ;
    rdfs:comment "Forbidding propagates through ingredients: what forbids an ingredient forbids every dish containing it." .
feo:recommends a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:isSupportiveOf , feo:isCharacteristicOf .

feo:hasParameter a owl:ObjectProperty ;
    rdfs:domain eo:Question ; rdfs:range feo:Parameter .
feo:hasPrimaryParameter a owl:ObjectProperty ; rdfs:subPropertyOf feo:hasParameter .
feo:hasSecondaryParameter a owl:ObjectProperty ; rdfs:subPropertyOf feo:hasParameter .

feo:hasIngredient a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:hasCharacteristic ;
    owl:inverseOf feo:isIngredientOf .
feo:isIngredientOf a owl:ObjectProperty .

feo:availableIn a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:hasSupportiveCharacteristic ;
    rdfs:range food:Season .
feo:availableInRegion a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:hasSupportiveCharacteristic ;
    rdfs:range food:Region .
feo:hasNutrient a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:hasCharacteristic ;
    rdfs:range food:Nutrient .
feo:compatibleWithDiet a owl:ObjectProperty ;
    rdfs:subPropertyOf feo:hasSupportiveCharacteristic ;
    rdfs:range food:Diet .

# User-realm properties. like/dislike use owl:inverseOf so the reasoner can
# infer liked/disliked classifications from either direction (the paper's
# feo:dislike / feo:dislikedBy example).
feo:like a owl:ObjectProperty ; owl:inverseOf feo:likedBy .
feo:likedBy a owl:ObjectProperty .
feo:dislike a owl:ObjectProperty ; owl:inverseOf feo:dislikedBy .
feo:dislikedBy a owl:ObjectProperty .
feo:allergicTo a owl:ObjectProperty ;
    rdfs:domain food:User ; rdfs:range feo:AllergicFoodCharacteristic .
feo:hasDiet a owl:ObjectProperty ; rdfs:range feo:DietCharacteristic .
feo:hasCondition a owl:ObjectProperty ; rdfs:range feo:ConditionCharacteristic .
feo:hasGoal a owl:ObjectProperty ; rdfs:range feo:GoalCharacteristic .
feo:hasBudget a owl:ObjectProperty ; rdfs:range feo:BudgetCharacteristic .

# System-realm properties.
feo:hasSeason a owl:ObjectProperty ;
    rdfs:domain eo:System ; rdfs:range feo:SeasonCharacteristic .
feo:locatedIn a owl:ObjectProperty ;
    rdfs:domain eo:System ; rdfs:range feo:LocationCharacteristic .

# Internal/external flag (a boolean data property on instances, inferred
# from class membership via owl:hasValue restrictions above).
feo:isInternal a owl:DatatypeProperty ; rdfs:range xsd:boolean .

# Question and recommendation specializations.
feo:FoodQuestion a owl:Class ; rdfs:subClassOf eo:Question .
feo:FoodRecommendation a owl:Class ; rdfs:subClassOf eo:SystemRecommendation .
`

// foodTTL is the "What To Make"-style food ontology FEO builds on: the
// concise food-domain classes the paper chose over full FoodOn. Food-domain
// classes carry isInternal=true via hasValue restrictions, which is what
// contextual explanations filter away.
const foodTTL = `
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl:  <http://www.w3.org/2002/07/owl#> .
@prefix xsd:  <http://www.w3.org/2001/XMLSchema#> .
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .

food: a owl:Ontology ; rdfs:label "What To Make food ontology (subset)" .

food:Food a owl:Class ; rdfs:subClassOf
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue true ] .
food:Recipe a owl:Class ; rdfs:subClassOf food:Food .
food:Ingredient a owl:Class ; rdfs:subClassOf
    [ a owl:Restriction ; owl:onProperty feo:isInternal ; owl:hasValue true ] .
# Disjointness axioms let the consistency checker (the Pellet-style
# Validate pass) flag modeling errors such as a season asserted as a food.
food:Season a owl:Class ; owl:disjointWith food:Food , food:User .
food:Region a owl:Class ; owl:disjointWith food:Food .
food:Nutrient a owl:Class ; owl:disjointWith food:Food .
food:Diet a owl:Class ; owl:disjointWith food:Food .
food:User a owl:Class ; owl:disjointWith food:Food .

food:calories a owl:DatatypeProperty ; rdfs:domain food:Food ; rdfs:range xsd:decimal .
food:proteinGrams a owl:DatatypeProperty ; rdfs:domain food:Food ; rdfs:range xsd:decimal .
food:costLevel a owl:DatatypeProperty ; rdfs:domain food:Food ; rdfs:range xsd:integer .
`
