package ontology

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

func TestTBoxLoads(t *testing.T) {
	g := TBox()
	if g.Len() < 100 {
		t.Fatalf("TBox suspiciously small: %d triples", g.Len())
	}
	for _, c := range []rdf.Term{FEOCharacteristic, FEOParameter, FEOUserCharacteristic,
		FEOSystemCharacteristic, FEOSeason, FEOAllergicFood, EOFact, EOFoil, EOKnowledge,
		FoodFood, FoodRecipe, FoodIngredient} {
		if !g.Exists(c, store.Wildcard, store.Wildcard) {
			t.Errorf("class %s missing from TBox", c.Compact(g.Namespaces()))
		}
	}
}

func TestFigure1Hierarchy(t *testing.T) {
	g, _ := Dataset(CQAll)
	// Figure 1: Parameter, UserCharacteristic, SystemCharacteristic are
	// subclasses of Characteristic.
	for _, sub := range []rdf.Term{FEOParameter, FEOUserCharacteristic, FEOSystemCharacteristic} {
		if !g.Has(sub, rdf.SubClassOfIRI, FEOCharacteristic) {
			t.Errorf("%s should be a subclass of feo:Characteristic", sub.Compact(g.Namespaces()))
		}
	}
	// Transitive materialization reaches the leaves.
	for _, leaf := range []rdf.Term{FEOSeason, FEOAllergicFood, FEOLikedFood, FEOCondition} {
		if !g.Has(leaf, rdf.SubClassOfIRI, FEOCharacteristic) {
			t.Errorf("%s should be a transitive subclass of feo:Characteristic", leaf.Compact(g.Namespaces()))
		}
	}
	// Bookkeeping classes stay under eo:knowledge, outside user-facing types.
	for _, k := range []rdf.Term{EOFact, EOFoil, FEOEcosystem, FEOParameterChar} {
		if !g.Has(k, rdf.SubClassOfIRI, EOKnowledge) {
			t.Errorf("%s should be under eo:knowledge", k.Compact(g.Namespaces()))
		}
	}
	// Critically, the concrete characteristic classes (and the orientation
	// classes they subclass) must NOT be under knowledge or the paper's
	// transitive filters would hide them.
	for _, c := range []rdf.Term{FEOSeason, FEOAllergicFood, FEOUserCharacteristic,
		FEOSystemCharacteristic, FEOSupportive, FEOOpposing} {
		if g.Has(c, rdf.SubClassOfIRI, EOKnowledge) {
			t.Errorf("%s must not be under eo:knowledge", c.Compact(g.Namespaces()))
		}
	}
}

func TestInferredClassifications(t *testing.T) {
	g, _ := Dataset(CQ2)
	cases := []struct {
		name     string
		instance rdf.Term
		class    rdf.Term
		want     bool
	}{
		{"autumn is SeasonCharacteristic", Autumn, FEOSeason, true},
		{"autumn is SystemCharacteristic", Autumn, FEOSystemCharacteristic, true},
		{"autumn is Ecosystem (union)", Autumn, FEOEcosystem, true},
		{"autumn is Supportive", Autumn, FEOSupportive, true},
		{"autumn is ParameterCharacteristic", Autumn, FEOParameterChar, true},
		{"autumn is a Fact", Autumn, EOFact, true},
		{"autumn is not a Foil", Autumn, EOFoil, false},
		{"broccoli is AllergicFood (range)", Broccoli, FEOAllergicFood, true},
		{"broccoli is UserCharacteristic", Broccoli, FEOUserCharacteristic, true},
		{"broccoli is Opposing", Broccoli, FEOOpposing, true},
		{"broccoli is a Foil", Broccoli, EOFoil, true},
		{"broccoli is not a Fact", Broccoli, EOFact, false},
		{"liked soup is LikedFood (someValuesFrom)", BroccoliCheddarSoup, FEOLikedFood, true},
		{"liked soup is not a Fact", BroccoliCheddarSoup, EOFact, false},
		{"cheddar is not a Foil", Cheddar, EOFoil, false},
		{"squash is not a Fact (not in ecosystem)", ButternutSquash, EOFact, false},
		{"primary parameter typed", ButternutSquashSoup, FEOParameter, true},
		{"secondary parameter typed", BroccoliCheddarSoup, FEOParameter, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := g.IsA(tc.instance, tc.class); got != tc.want {
				t.Errorf("IsA(%s, %s) = %v, want %v",
					tc.instance.Compact(g.Namespaces()), tc.class.Compact(g.Namespaces()), got, tc.want)
			}
		})
	}
}

func TestIsInternalInference(t *testing.T) {
	g, _ := Dataset(CQ1)
	// cls-hv1: season instances become isInternal=false, foods true.
	if !g.Has(Autumn, FEOIsInternal, rdf.NewBool(false)) {
		t.Error("Autumn should be inferred isInternal=false")
	}
	if !g.Has(Cauliflower, FEOIsInternal, rdf.NewBool(true)) {
		t.Error("Cauliflower should be inferred isInternal=true")
	}
	if !g.Has(CauliflowerPotatoCurry, FEOIsInternal, rdf.NewBool(true)) {
		t.Error("the recipe should be isInternal=true")
	}
}

func TestTransitiveCharacteristicClosure(t *testing.T) {
	g, _ := Dataset(CQ1)
	// Depth-2: curry -> cauliflower -> autumn.
	if !g.Has(CauliflowerPotatoCurry, FEOHasCharacteristic, Autumn) {
		t.Error("transitive hasCharacteristic should reach Autumn from the curry")
	}
	// Inverse completion.
	if !g.Has(Autumn, FEOIsCharacteristicOf, CauliflowerPotatoCurry) {
		t.Error("inverse isCharacteristicOf missing")
	}
}

func TestForbidsChain(t *testing.T) {
	g, _ := Dataset(CQ3)
	if !g.Has(Pregnancy, FEOForbids, Sushi) {
		t.Error("pregnancy should forbid sushi via forbids∘isIngredientOf")
	}
	// Multiple inheritance: forbids implies both isOpposedBy and
	// isCharacteristicOf (the paper's Section III-B example).
	if !g.Has(Pregnancy, FEOIsOpposedBy, Sushi) {
		t.Error("forbids ⊑ isOpposedBy not propagated")
	}
	if !g.Has(Pregnancy, FEOIsCharacteristicOf, Sushi) {
		t.Error("forbids ⊑ isCharacteristicOf not propagated")
	}
	// recommends propagates to the supportive lattice only.
	if !g.Has(Pregnancy, FEOIsSupportiveOf, Spinach) {
		t.Error("recommends ⊑ isSupportiveOf not propagated")
	}
	if g.Has(Pregnancy, FEOForbids, Rice) {
		t.Error("rice is not forbidden; chain over-fired")
	}
	if g.Has(Pregnancy, FEORecommends, SpinachFrittata) {
		t.Error("recommendations must not propagate through ingredients")
	}
}

// listing1 is the paper's Listing 1 verbatim (whitespace normalized).
const listing1 = `
SELECT DISTINCT ?characteristic ?classes
WHERE{
?WhyEatCauliflowerPotatoCurry feo:hasParameter ?parameter .
?parameter feo:hasCharacteristic ?characteristic .
?characteristic feo:isInternal False .
?systemChar a feo:SystemCharacteristic .
?userChar a feo:UserCharacteristic .
Filter ( ?characteristic = ?systemChar || ?characteristic = ?userChar ) .
?characteristic a ?classes .
?classes rdfs:subClassOf feo:Characteristic .
Filter Not Exists{?classes rdfs:subClassOf eo:knowledge }.
}`

func TestListing1CQ1(t *testing.T) {
	g, _ := Dataset(CQ1)
	res, err := sparql.Run(g, listing1)
	if err != nil {
		t.Fatalf("listing 1: %v", err)
	}
	// The paper's displayed row.
	if !res.HasRow(map[string]rdf.Term{"characteristic": Autumn, "classes": FEOSeason}) {
		t.Errorf("expected row (feo:Autumn, feo:SeasonCharacteristic); got:\n%s", res.Table())
	}
	// Every returned characteristic must be Autumn (the only external
	// characteristic of the curry in the ecosystem).
	for _, c := range res.Column("characteristic") {
		if c != Autumn {
			t.Errorf("unexpected characteristic %s", c.Compact(g.Namespaces()))
		}
	}
	// No internal (food) characteristics may leak through.
	for _, cl := range res.Column("classes") {
		if cl == FoodIngredient || cl == FoodFood {
			t.Errorf("internal class %s leaked into contextual results", cl.Compact(g.Namespaces()))
		}
	}
}

// listing2 is the paper's Listing 2 verbatim.
const listing2 = `
Select DISTINCT ?factType ?factA ?foilType ?foilB
Where{
BIND (feo:WhyEatButternutSquashSoupOverBroccoliCheddarSoup as ?question) .
?question feo:hasPrimaryParameter ?parameterA .
?question feo:hasSecondaryParameter ?parameterB .
?parameterA feo:hasCharacteristic ?factA .
?factA a <https://purl.org/heals/eo#Fact>.
?factA a ?factType .
?factType (rdfs:subClassOf+) feo:Characteristic .
Filter Not Exists{?factType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> }.
Filter Not Exists{?s rdfs:subClassOf ?factType}.
?parameterB feo:hasCharacteristic ?foilB .
?foilB a <https://purl.org/heals/eo#Foil> .
?foilB a ?foilType.
?foilType (rdfs:subClassOf+) feo:Characteristic .
Filter Not Exists{?foilType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> }.
Filter Not Exists{?t rdfs:subClassOf ?foilType}.
}`

func TestListing2CQ2(t *testing.T) {
	g, _ := Dataset(CQ2)
	res, err := sparql.Run(g, listing2)
	if err != nil {
		t.Fatalf("listing 2: %v", err)
	}
	// The paper's exact single result row.
	want := map[string]rdf.Term{
		"factType": FEOSeason,
		"factA":    Autumn,
		"foilType": FEOAllergicFood,
		"foilB":    Broccoli,
	}
	if !res.HasRow(want) {
		t.Fatalf("expected the paper's row (SeasonCharacteristic, Autumn, AllergicFoodCharacteristic, Broccoli); got:\n%s", res.Table())
	}
	if res.Len() != 1 {
		t.Errorf("expected exactly 1 row like the paper, got %d:\n%s", res.Len(), res.Table())
	}
}

// listing3 is the paper's Listing 3 verbatim.
const listing3 = `
SELECT Distinct ?property ?baseFood ?inheritedFood
WHERE{
feo:WhatIfIWasPregnant feo:hasParameter ?parameter .
?parameter ?property ?baseFood .
?property rdfs:subPropertyOf feo:isCharacteristicOf.
?baseFood a food:Food .
OPTIONAL { ?baseFood feo:isIngredientOf ?inheritedFood.}
}`

func TestListing3CQ3(t *testing.T) {
	g, _ := Dataset(CQ3)
	res, err := sparql.Run(g, listing3)
	if err != nil {
		t.Fatalf("listing 3: %v", err)
	}
	// Paper row 1: feo:recommends feo:Spinach feo:SpinachFrittata.
	if !res.HasRow(map[string]rdf.Term{
		"property": FEORecommends, "baseFood": Spinach, "inheritedFood": SpinachFrittata,
	}) {
		t.Errorf("missing (recommends, Spinach, SpinachFrittata):\n%s", res.Table())
	}
	// Paper row 2: feo:forbids feo:Sushi (no inherited food).
	foundForbidsSushi := false
	for _, sol := range res.Solutions {
		if sol["property"] == FEOForbids && sol["baseFood"] == Sushi {
			foundForbidsSushi = true
			if _, bound := sol["inheritedFood"]; bound {
				t.Error("sushi row should have unbound inheritedFood")
			}
		}
	}
	if !foundForbidsSushi {
		t.Errorf("missing (forbids, Sushi):\n%s", res.Table())
	}
	if res.Len() != 2 {
		t.Errorf("expected exactly the paper's 2 rows, got %d:\n%s", res.Len(), res.Table())
	}
	// Raw fish must be filtered out by `?baseFood a food:Food`.
	for _, b := range res.Column("baseFood") {
		if b == RawFish {
			t.Error("raw fish (an Ingredient, not a Food) leaked into results")
		}
	}
}

func TestDatasetsAreIndependent(t *testing.T) {
	g1, _ := Dataset(CQ1)
	if g1.Exists(QWhatIfIWasPregnant, store.Wildcard, store.Wildcard) {
		t.Error("CQ1 dataset must not contain CQ3 instances")
	}
	gAll, _ := Dataset(CQAll)
	if !gAll.Exists(QWhatIfIWasPregnant, store.Wildcard, store.Wildcard) ||
		!gAll.Exists(QWhyEatCauliflowerPotatoCurry, store.Wildcard, store.Wildcard) {
		t.Error("CQAll must contain every question")
	}
}

func TestMaterializationIsFixpoint(t *testing.T) {
	g, r := Dataset(CQAll)
	n := g.Len()
	stats := r.Materialize(g)
	if stats.Inferred != 0 || g.Len() != n {
		t.Errorf("re-materialization added %d triples", stats.Inferred)
	}
}

func TestABoxPanicsOnUnknownCQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ABox should panic on invalid CQ")
		}
	}()
	ABox(CompetencyQuestion(99))
}
