// Package ontology encodes the three ontologies the paper composes and the
// competency-question datasets it evaluates with:
//
//   - an Explanation Ontology (EO) subset: explanation types, questions,
//     recommendations, eo:Fact / eo:Foil, and the eo:knowledge bookkeeping
//     class the paper's queries filter on;
//   - the Food Explanation Ontology (FEO) — the paper's contribution: the
//     feo:Characteristic hierarchy (Figure 1), the property lattice with
//     multiple inheritance and inverses (Figure 2), the fact/foil
//     classification (Figure 3), and the isInternal flag for contextual
//     explanations;
//   - a "What To Make"-style food ontology: Food, Recipe, Ingredient,
//     Season, Region, Nutrient, Diet, User;
//   - the ABoxes for competency questions CQ1-CQ3 (Listings 1-3).
//
// The documents are embedded as Turtle and parsed by the repository's own
// parser, so loading also continuously exercises the serialization stack.
// Classification (e.g. which instances are eo:Fact) is left to the OWL RL
// reasoner, exactly as the paper runs Pellet before querying.
package ontology

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Well-known EO terms.
var (
	EOExplanation     = rdf.NewIRI(rdf.EONS + "Explanation")
	EOQuestion        = rdf.NewIRI(rdf.EONS + "Question")
	EORecommendation  = rdf.NewIRI(rdf.EONS + "Recommendation")
	EOSystem          = rdf.NewIRI(rdf.EONS + "System")
	EOKnowledge       = rdf.NewIRI(rdf.EONS + "knowledge")
	EOFact            = rdf.NewIRI(rdf.EONS + "Fact")
	EOFoil            = rdf.NewIRI(rdf.EONS + "Foil")
	EOAddresses       = rdf.NewIRI(rdf.EONS + "addresses")
	EOExplains        = rdf.NewIRI(rdf.EONS + "explains")
	EOUsesKnowledge   = rdf.NewIRI(rdf.EONS + "usesKnowledge")
	EOHasExplanation  = rdf.NewIRI(rdf.EONS + "hasExplanation")
	EORecommends      = rdf.NewIRI(rdf.EONS + "recommends")
	EOGeneratedBy     = rdf.NewIRI(rdf.EONS + "generatedBy")
	EOBasedOnEvidence = rdf.NewIRI(rdf.EONS + "basedOnEvidence")
)

// The nine explanation-type classes of Table I.
var (
	EOCaseBasedExplanation       = rdf.NewIRI(rdf.EONS + "CaseBasedExplanation")
	EOContextualExplanation      = rdf.NewIRI(rdf.EONS + "ContextualExplanation")
	EOContrastiveExplanation     = rdf.NewIRI(rdf.EONS + "ContrastiveExplanation")
	EOCounterfactualExplanation  = rdf.NewIRI(rdf.EONS + "CounterfactualExplanation")
	EOEverydayExplanation        = rdf.NewIRI(rdf.EONS + "EverydayExplanation")
	EOScientificExplanation      = rdf.NewIRI(rdf.EONS + "ScientificExplanation")
	EOSimulationBasedExplanation = rdf.NewIRI(rdf.EONS + "SimulationBasedExplanation")
	EOStatisticalExplanation     = rdf.NewIRI(rdf.EONS + "StatisticalExplanation")
	EOTraceBasedExplanation      = rdf.NewIRI(rdf.EONS + "TraceBasedExplanation")
)

// FEO class terms (Figure 1 hierarchy plus classification classes).
var (
	FEOCharacteristic       = rdf.NewIRI(rdf.FEONS + "Characteristic")
	FEOParameter            = rdf.NewIRI(rdf.FEONS + "Parameter")
	FEOUserCharacteristic   = rdf.NewIRI(rdf.FEONS + "UserCharacteristic")
	FEOSystemCharacteristic = rdf.NewIRI(rdf.FEONS + "SystemCharacteristic")
	FEOLikedFood            = rdf.NewIRI(rdf.FEONS + "LikedFoodCharacteristic")
	FEODislikedFood         = rdf.NewIRI(rdf.FEONS + "DislikedFoodCharacteristic")
	FEOAllergicFood         = rdf.NewIRI(rdf.FEONS + "AllergicFoodCharacteristic")
	FEODiet                 = rdf.NewIRI(rdf.FEONS + "DietCharacteristic")
	FEOCondition            = rdf.NewIRI(rdf.FEONS + "ConditionCharacteristic")
	FEOGoal                 = rdf.NewIRI(rdf.FEONS + "GoalCharacteristic")
	FEOBudget               = rdf.NewIRI(rdf.FEONS + "BudgetCharacteristic")
	FEOSeason               = rdf.NewIRI(rdf.FEONS + "SeasonCharacteristic")
	FEOLocation             = rdf.NewIRI(rdf.FEONS + "LocationCharacteristic")
	FEOTime                 = rdf.NewIRI(rdf.FEONS + "TimeCharacteristic")
	FEONutrient             = rdf.NewIRI(rdf.FEONS + "NutrientCharacteristic")
	FEOEcosystem            = rdf.NewIRI(rdf.FEONS + "EcosystemCharacteristic")
	FEOParameterChar        = rdf.NewIRI(rdf.FEONS + "ParameterCharacteristic")
	FEOSupportive           = rdf.NewIRI(rdf.FEONS + "SupportiveCharacteristic")
	FEOOpposing             = rdf.NewIRI(rdf.FEONS + "OpposingCharacteristic")
	FEOFoodQuestion         = rdf.NewIRI(rdf.FEONS + "FoodQuestion")
	FEOFoodRecommendation   = rdf.NewIRI(rdf.FEONS + "FoodRecommendation")
)

// FEO property terms (Figure 2 lattice).
var (
	FEOHasCharacteristic     = rdf.NewIRI(rdf.FEONS + "hasCharacteristic")
	FEOIsCharacteristicOf    = rdf.NewIRI(rdf.FEONS + "isCharacteristicOf")
	FEOHasSupportiveChar     = rdf.NewIRI(rdf.FEONS + "hasSupportiveCharacteristic")
	FEOIsSupportiveOf        = rdf.NewIRI(rdf.FEONS + "isSupportiveOf")
	FEOHasOpposingChar       = rdf.NewIRI(rdf.FEONS + "hasOpposingCharacteristic")
	FEOIsOpposedBy           = rdf.NewIRI(rdf.FEONS + "isOpposedBy")
	FEOForbids               = rdf.NewIRI(rdf.FEONS + "forbids")
	FEORecommends            = rdf.NewIRI(rdf.FEONS + "recommends")
	FEOHasParameter          = rdf.NewIRI(rdf.FEONS + "hasParameter")
	FEOHasPrimaryParameter   = rdf.NewIRI(rdf.FEONS + "hasPrimaryParameter")
	FEOHasSecondaryParameter = rdf.NewIRI(rdf.FEONS + "hasSecondaryParameter")
	FEOHasIngredient         = rdf.NewIRI(rdf.FEONS + "hasIngredient")
	FEOIsIngredientOf        = rdf.NewIRI(rdf.FEONS + "isIngredientOf")
	FEOAvailableIn           = rdf.NewIRI(rdf.FEONS + "availableIn")
	FEOAvailableInRegion     = rdf.NewIRI(rdf.FEONS + "availableInRegion")
	FEOHasNutrient           = rdf.NewIRI(rdf.FEONS + "hasNutrient")
	FEOHasDiet               = rdf.NewIRI(rdf.FEONS + "hasDiet")
	FEOCompatibleWithDiet    = rdf.NewIRI(rdf.FEONS + "compatibleWithDiet")
	FEOLike                  = rdf.NewIRI(rdf.FEONS + "like")
	FEOLikedBy               = rdf.NewIRI(rdf.FEONS + "likedBy")
	FEODislike               = rdf.NewIRI(rdf.FEONS + "dislike")
	FEODislikedBy            = rdf.NewIRI(rdf.FEONS + "dislikedBy")
	FEOAllergicTo            = rdf.NewIRI(rdf.FEONS + "allergicTo")
	FEOHasCondition          = rdf.NewIRI(rdf.FEONS + "hasCondition")
	FEOHasGoal               = rdf.NewIRI(rdf.FEONS + "hasGoal")
	FEOHasSeason             = rdf.NewIRI(rdf.FEONS + "hasSeason")
	FEOLocatedIn             = rdf.NewIRI(rdf.FEONS + "locatedIn")
	FEOHasBudget             = rdf.NewIRI(rdf.FEONS + "hasBudget")
	FEOIsInternal            = rdf.NewIRI(rdf.FEONS + "isInternal")
)

// Food ontology class terms.
var (
	FoodFood       = rdf.NewIRI(rdf.FoodNS + "Food")
	FoodRecipe     = rdf.NewIRI(rdf.FoodNS + "Recipe")
	FoodIngredient = rdf.NewIRI(rdf.FoodNS + "Ingredient")
	FoodSeason     = rdf.NewIRI(rdf.FoodNS + "Season")
	FoodRegion     = rdf.NewIRI(rdf.FoodNS + "Region")
	FoodNutrient   = rdf.NewIRI(rdf.FoodNS + "Nutrient")
	FoodDiet       = rdf.NewIRI(rdf.FoodNS + "Diet")
	FoodUser       = rdf.NewIRI(rdf.FoodNS + "User")
	FoodCalories   = rdf.NewIRI(rdf.FoodNS + "calories")
	FoodProtein    = rdf.NewIRI(rdf.FoodNS + "proteinGrams")
	FoodCostLevel  = rdf.NewIRI(rdf.FoodNS + "costLevel")
)

// CompetencyQuestion selects one of the paper's evaluation datasets.
type CompetencyQuestion int

// The paper's three competency questions plus the merged dataset.
const (
	CQ1 CompetencyQuestion = iota + 1 // contextual: cauliflower potato curry
	CQ2                               // contrastive: butternut vs broccoli soup
	CQ3                               // counterfactual: pregnancy
	CQAll
)

// TBox returns the merged terminology: EO subset + FEO + food ontology.
func TBox() *store.Graph {
	g := store.New()
	mustParse(g, eoTTL, "eo")
	mustParse(g, feoTTL, "feo")
	mustParse(g, foodTTL, "food")
	return g
}

// ABox returns the instance data for one competency question (or all).
func ABox(cq CompetencyQuestion) *store.Graph {
	g := store.New()
	switch cq {
	case CQ1:
		mustParse(g, cq1TTL, "cq1")
	case CQ2:
		mustParse(g, cq2TTL, "cq2")
	case CQ3:
		mustParse(g, cq3TTL, "cq3")
	case CQAll:
		mustParse(g, cq1TTL, "cq1")
		mustParse(g, cq2TTL, "cq2")
		mustParse(g, cq3TTL, "cq3")
	default:
		panic(fmt.Sprintf("ontology: unknown competency question %d", cq))
	}
	return g
}

// Dataset returns TBox + ABox(cq), materialized with the OWL RL reasoner —
// the graph state the paper queries (Pellet-inferred export). The returned
// reasoner retains derivation traces for trace-based explanations.
func Dataset(cq CompetencyQuestion) (*store.Graph, *reasoner.Reasoner) {
	g := TBox()
	g.Merge(ABox(cq))
	r := reasoner.New(reasoner.Options{TraceDerivations: true})
	r.Materialize(g)
	return g, r
}

func mustParse(g *store.Graph, ttl, name string) {
	if err := turtle.ParseInto(g, ttl); err != nil {
		panic(fmt.Sprintf("ontology: embedded %s document is invalid: %v", name, err))
	}
}
