// Quickstart: load the paper's competency-question data, ask the three
// evaluation questions (Listings 1-3), and print the generated
// explanations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/feo"
)

func main() {
	sess := feo.NewSession(feo.Options{})

	fmt.Println("== FEO quickstart: the paper's three competency questions ==")
	fmt.Println()

	// CQ1 — contextual: "Why should I eat Cauliflower Potato Curry?"
	ex, err := sess.Explain(feo.Question{
		Type:    feo.Contextual,
		Primary: feo.FEO("CauliflowerPotatoCurry"),
		Text:    "Why should I eat Cauliflower Potato Curry?",
	})
	must(err)
	fmt.Println("Q1:", ex.Question.Text)
	fmt.Println("A1:", ex.Summary)
	fmt.Println()

	// CQ2 — contrastive: "Why Butternut Squash Soup over Broccoli Cheddar?"
	ex, err = sess.Explain(feo.Question{
		Type:      feo.Contrastive,
		Primary:   feo.FEO("ButternutSquashSoup"),
		Secondary: feo.FEO("BroccoliCheddarSoup"),
		Text:      "Why should I eat Butternut Squash Soup over a Broccoli Cheddar Soup?",
	})
	must(err)
	fmt.Println("Q2:", ex.Question.Text)
	fmt.Println("A2:", ex.Summary)
	fmt.Println()

	// CQ3 — counterfactual: "What if I was pregnant?"
	ex, err = sess.Explain(feo.Question{
		Type:    feo.Counterfactual,
		Primary: feo.FEO("Pregnancy"),
		Text:    "What if I was pregnant?",
	})
	must(err)
	fmt.Println("Q3:", ex.Question.Text)
	fmt.Println("A3:", ex.Summary)
	fmt.Println()

	// Raw SPARQL access to the same inferred graph.
	res, err := sess.Query(`
SELECT ?fact WHERE { ?fact a eo:Fact }`)
	must(err)
	fmt.Println("Classified facts in the inferred graph:")
	fmt.Print(res.Table())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
