// Group dining: the paper's introduction scenario — "the seafood allergy
// of one family member may preclude recipes including shrimp to be
// recommended to the whole group". A family of three shares a dinner
// recommendation; one member's allergy excludes recipes for everyone, and
// the contrastive explanation says why the winner beat the family
// favorite.
//
//	go run ./examples/groupdining
package main

import (
	"fmt"

	"repro/feo"
)

const family = `
@prefix eo:   <https://purl.org/heals/eo#> .
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix kg:   <https://purl.org/heals/foodkg/> .

kg:winter a food:Season ; rdfs:label "Winter" .
kg:family-system a eo:System ; feo:hasSeason kg:winter .

kg:shrimp a food:Ingredient ; rdfs:label "Shrimp" .
kg:noodles a food:Ingredient ; rdfs:label "Noodles" .
kg:tofu a food:Ingredient ; rdfs:label "Tofu" ; feo:availableIn kg:winter .
kg:mushroom a food:Ingredient ; rdfs:label "Mushroom" ; feo:availableIn kg:winter .
kg:chicken a food:Ingredient ; rdfs:label "Chicken" .

kg:shrimpPadThai a food:Recipe ; rdfs:label "Shrimp Pad Thai" ;
    feo:hasIngredient kg:shrimp , kg:noodles ; food:costLevel 2 ; food:calories 620 .
kg:tofuHotPot a food:Recipe ; rdfs:label "Tofu Hot Pot" ;
    feo:hasIngredient kg:tofu , kg:mushroom ; food:costLevel 1 ; food:calories 480 .
kg:chickenNoodles a food:Recipe ; rdfs:label "Chicken Noodles" ;
    feo:hasIngredient kg:chicken , kg:noodles ; food:costLevel 1 ; food:calories 560 .

kg:mom a food:User ; feo:like kg:shrimpPadThai .
kg:dad a food:User ; feo:like kg:chickenNoodles .
kg:kid a food:User ; feo:allergicTo kg:shrimp .
`

func main() {
	sess := feo.NewSession(feo.Options{Data: feo.DataNone})
	must(sess.LoadTurtle(family))

	kg := func(local string) feo.Term {
		return feo.IRI("https://purl.org/heals/foodkg/" + local)
	}
	group := []feo.Term{kg("mom"), kg("dad"), kg("kid")}

	fmt.Println("== Family dinner recommendation ==")
	fmt.Println()
	recs := sess.RecommendGroup(group, 0)
	for i, r := range recs {
		if r.Excluded {
			fmt.Printf("  %d. %-18s EXCLUDED: %s\n", i+1, r.Label, r.Reason)
			continue
		}
		fmt.Printf("  %d. %-18s score %.1f\n", i+1, r.Label, r.Score)
	}
	fmt.Println()

	// Mom asks: why the hot pot over her favorite pad thai?
	ex, err := sess.Explain(feo.Question{
		Type:      feo.Contrastive,
		Primary:   recs[0].Recipe,
		Secondary: kg("shrimpPadThai"),
		User:      kg("mom"),
		Text:      "Why was Tofu Hot Pot recommended over Shrimp Pad Thai?",
	})
	must(err)
	fmt.Println("Q:", ex.Question.Text)
	fmt.Println("A:", ex.Summary)
	fmt.Println()

	// And the contextual view of the winner.
	ex, err = sess.Explain(feo.Question{
		Type:    feo.Contextual,
		Primary: recs[0].Recipe,
	})
	must(err)
	fmt.Println("Q: Why should the family eat", recs[0].Label+"?")
	fmt.Println("A:", ex.Summary)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
