// Pregnancy counterfactual at scale: the paper's CQ3 scenario ("What if I
// was pregnant?") run against a generated FoodKG instead of the tiny CQ
// dataset. Pregnancy knowledge (forbids raw-ish ingredients, recommends
// folate-rich ones) propagates through the forbids∘isIngredientOf property
// chain to every affected recipe, and the counterfactual explanation
// summarizes the diet change.
//
//	go run ./examples/pregnancy
package main

import (
	"fmt"

	"repro/feo"
)

func main() {
	sess := feo.NewSession(feo.Options{
		Data: feo.DataSynthetic,
		KG: feo.KGConfig{
			Seed: 11, Recipes: 150, Ingredients: 60, Users: 10,
			MinIngredients: 3, MaxIngredients: 6,
			SeasonalShare: 0.4, LikesPerUser: 3, DislikesPerUser: 1,
		},
	})

	// Attach pregnancy domain knowledge to a handful of generated
	// ingredients: the first salmon/shrimp-style ingredients are forbidden,
	// spinach-style ones recommended.
	must(sess.LoadTurtle(`
@prefix feo: <https://purl.org/heals/feo#> .
@base <https://purl.org/heals/foodkg/> .

<condition/Pregnancy> feo:forbids <ingredient/Salmon0> , <ingredient/Shrimp0> ;
    feo:recommends <ingredient/Spinach0> .
`))

	pregnancy := feo.IRI("https://purl.org/heals/foodkg/condition/Pregnancy")

	// How many recipes become forbidden? (The property chain has already
	// closed forbids over ingredients.) The count and the recipe total come
	// from one pinned snapshot, so they describe the same graph version.
	sn := sess.Snapshot()
	res, err := sn.Query(`
SELECT (COUNT(DISTINCT ?recipe) AS ?n) WHERE {
  <https://purl.org/heals/foodkg/condition/Pregnancy> feo:forbids ?recipe .
  ?recipe a food:Recipe .
}`)
	must(err)
	nForbidden, _ := res.Get(0, "n").Int()

	total := len(sn.Recipes())
	fmt.Printf("== Pregnancy counterfactual over %d generated recipes ==\n\n", total)
	fmt.Printf("Recipes that would become forbidden: %d of %d\n\n", nForbidden, total)

	ex, err := sess.Explain(feo.Question{
		Type:    feo.Counterfactual,
		Primary: pregnancy,
		Text:    "What if I was pregnant?",
	})
	must(err)
	fmt.Println("Q:", ex.Question.Text)
	fmt.Println("A:", ex.Summary)
	fmt.Println()
	fmt.Println("Evidence:")
	for i, ev := range ex.Evidence {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(ex.Evidence)-10)
			break
		}
		fmt.Println("  -", ev.Phrase)
	}

	// Scientific backing for the recommendation.
	must(sess.LoadTurtle(`
@prefix eo: <https://purl.org/heals/eo#> .
@base <https://purl.org/heals/foodkg/> .
<study/folate> a eo:ScientificKnowledge ;
    eo:evidenceFor <ingredient/Spinach0> ;
    eo:citesSource "CDC folic acid guidance for pregnancy (2020)" .
`))
	ex, err = sess.Explain(feo.Question{
		Type:    feo.Scientific,
		Primary: feo.IRI("https://purl.org/heals/foodkg/ingredient/Spinach0"),
	})
	must(err)
	fmt.Println()
	fmt.Println("Q: What literature recommends spinach?")
	fmt.Println("A:", ex.Summary)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
