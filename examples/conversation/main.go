// Conversation: the paper's stated target is "more interactive or
// conversational food recommendations, for example, in a personalized
// health recommendation app". This example plays a scripted dialog: the
// Health Coach recommends, the user asks follow-up questions of different
// Table I types, and each answer comes from the explanation engine over
// the same inferred graph. It also shows that generated explanations are
// themselves semantic objects that later turns can query.
//
//	go run ./examples/conversation
package main

import (
	"fmt"

	"repro/feo"
)

func main() {
	sess := feo.NewSession(feo.Options{})
	user := feo.FEO("User2")

	say := func(who, text string) { fmt.Printf("%-6s %s\n", who+":", text) }

	say("coach", "Here are today's picks for you:")
	recs := sess.Recommend(user, 3)
	for i, r := range recs {
		if !r.Excluded {
			fmt.Printf("        %d. %s (score %.1f)\n", i+1, r.Label, r.Score)
		}
	}
	top := recs[0]
	fmt.Println()

	// Turn 1: why?
	say("user", "Why should I eat "+top.Label+"?")
	ex, err := sess.Explain(feo.Question{Type: feo.Contextual, Primary: top.Recipe, User: user})
	must(err)
	say("coach", ex.Summary)
	fmt.Println()

	// Turn 2: why not my favorite?
	say("user", "Why that over Broccoli Cheddar Soup? I love it.")
	ex, err = sess.Explain(feo.Question{
		Type: feo.Contrastive, Primary: top.Recipe,
		Secondary: feo.FEO("BroccoliCheddarSoup"), User: user,
	})
	must(err)
	say("coach", ex.Summary)
	fmt.Println()

	// Turn 3: how did you decide?
	say("user", "What steps led to that recommendation?")
	ex, err = sess.Explain(feo.Question{Type: feo.TraceBased, Primary: top.Recipe, User: user})
	must(err)
	say("coach", ex.Summary)
	fmt.Println()

	// Turn 4: a what-if.
	say("user", "What if I was pregnant?")
	ex, err = sess.Explain(feo.Question{Type: feo.Counterfactual, Primary: feo.FEO("Pregnancy"), User: user})
	must(err)
	say("coach", ex.Summary)
	fmt.Println()

	// Turn 5: the dialog history itself is in the knowledge graph.
	say("user", "What have you explained to me so far?")
	res, err := sess.Query(`
SELECT ?type ?summary WHERE {
  ?ex a eo:Explanation ; a ?type ; rdfs:comment ?summary .
  FILTER(?type != eo:Explanation)
}`)
	must(err)
	say("coach", fmt.Sprintf("We covered %d explanations this session:", res.Len()))
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("        - [%s] %s\n",
			shortType(res.Get(i, "type").Value), res.Get(i, "summary").Value)
	}
}

func shortType(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
