// Health Coach end-to-end: generate a synthetic FoodKG, run the simulated
// Health Coach recommender for a user, and produce every Table I
// explanation type for the top recommendation — the paper's target
// workflow of a personalized, conversational food recommender with
// post-hoc semantic explanations.
//
//	go run ./examples/healthcoach
package main

import (
	"fmt"

	"repro/feo"
)

func main() {
	sess := feo.NewSession(feo.Options{
		Data: feo.DataSynthetic,
		KG: feo.KGConfig{
			Seed: 42, Recipes: 120, Ingredients: 80, Users: 15,
			MinIngredients: 3, MaxIngredients: 7,
			SeasonalShare: 0.5, RegionalShare: 0.3,
			LikesPerUser: 4, DislikesPerUser: 2,
			AllergyRate: 0.4, ConditionRate: 0.3,
		},
	})

	// Pin one snapshot for the read-only setup: user listing, stats,
	// ranking, and the lookup queries all observe a single graph version.
	sn := sess.Snapshot()
	user := sn.Users()[0]
	fmt.Printf("== Health Coach session for %s ==\n\n", user.Value)
	fmt.Println("graph:", sn.Stats())
	fmt.Println()

	recs := sn.Recommend(user, 5)
	fmt.Println("Top recommendations:")
	for i, r := range recs {
		if r.Excluded {
			fmt.Printf("  %d. %-38s EXCLUDED (%s)\n", i+1, r.Label, r.Reason)
			continue
		}
		fmt.Printf("  %d. %-38s score %.1f\n", i+1, r.Label, r.Score)
	}
	fmt.Println()

	top := recs[0]
	runnerUp := recs[1]
	fmt.Printf("Explaining the top pick, %s, with all nine Table I types:\n\n", top.Label)

	questions := []feo.Question{
		{Type: feo.Contextual, Primary: top.Recipe, User: user},
		{Type: feo.Contrastive, Primary: top.Recipe, Secondary: runnerUp.Recipe, User: user},
		{Type: feo.Counterfactual, Primary: firstCondition(sn), User: user},
		{Type: feo.CaseBased, Primary: top.Recipe, User: user},
		{Type: feo.Everyday, Primary: top.Recipe},
		{Type: feo.Scientific, Primary: top.Recipe},
		{Type: feo.SimulationBased, Primary: top.Recipe},
		{Type: feo.Statistical, Primary: firstDiet(sn), User: user},
		{Type: feo.TraceBased, Primary: top.Recipe, User: user},
	}
	for _, q := range questions {
		if !q.Primary.IsValid() {
			continue
		}
		ex, err := sess.Explain(q)
		if err != nil {
			fmt.Printf("  [%s] error: %v\n", q.Type, err)
			continue
		}
		fmt.Printf("  [%s]\n      %s\n", ex.Type, ex.Summary)
	}
}

func firstCondition(sn *feo.Snapshot) feo.Term {
	res, err := sn.Query(`SELECT ?c WHERE { ?c a feo:ConditionCharacteristic } LIMIT 1`)
	if err != nil || res.Len() == 0 {
		return feo.Term{}
	}
	return res.Get(0, "c")
}

func firstDiet(sn *feo.Snapshot) feo.Term {
	res, err := sn.Query(`SELECT ?d WHERE { ?d a food:Diet } LIMIT 1`)
	if err != nil || res.Len() == 0 {
		return feo.Term{}
	}
	return res.Get(0, "d")
}
