package repro

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/paper"
	"repro/internal/sparql"
	"repro/internal/store"
)

// canonRows renders a solution multiset order-insensitively.
func canonRows(res *sparql.Result) []string {
	rows := make([]string, 0, len(res.Solutions))
	for _, sol := range res.Solutions {
		parts := make([]string, 0, len(sol))
		for v, t := range sol {
			parts = append(parts, v+"="+t.String())
		}
		sort.Strings(parts)
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	return rows
}

func runBothOrders(t *testing.T, g *store.Graph, query string) ([]string, []string) {
	t.Helper()
	q, err := sparql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	reordered, err := sparql.Execute(g, q)
	if err != nil {
		t.Fatalf("execute (reordered): %v", err)
	}
	sparql.DisableJoinReorder = true
	defer func() { sparql.DisableJoinReorder = false }()
	naive, err := sparql.Execute(g, q)
	if err != nil {
		t.Fatalf("execute (naive order): %v", err)
	}
	return canonRows(reordered), canonRows(naive)
}

// TestJoinReorderEquivalence verifies that selectivity-based BGP join
// reordering produces exactly the solutions of written-order evaluation on
// every competency-question dataset and the paper's listing queries.
func TestJoinReorderEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		cq    ontology.CompetencyQuestion
		query string
	}{
		{"listing1/cq1", ontology.CQ1, paper.Listing1Query},
		{"listing2/cq2", ontology.CQ2, paper.Listing2Query},
		{"listing3/cq3", ontology.CQ3, paper.Listing3Query},
		{"listing1/cqall", ontology.CQAll, paper.Listing1Query},
		{"listing2/cqall", ontology.CQAll, paper.Listing2Query},
		{"listing3/cqall", ontology.CQAll, paper.Listing3Query},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := ontology.Dataset(tc.cq)
			got, want := runBothOrders(t, g, tc.query)
			if len(got) != len(want) {
				t.Fatalf("row count differs: reordered %d vs naive %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("row %d differs:\nreordered: %s\nnaive:     %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestJoinReorderEquivalenceOperators covers the operator shapes the A4
// benchmark exercises: multi-pattern joins, OPTIONAL, UNION, filters over
// cross products, and paths mixed into a BGP.
func TestJoinReorderEquivalenceOperators(t *testing.T) {
	g, _ := ontology.Dataset(ontology.CQAll)
	queries := []struct{ name, query string }{
		{"join", `SELECT ?p ?c WHERE { ?q feo:hasParameter ?p . ?p feo:hasCharacteristic ?c }`},
		{"optional", `SELECT ?p ?c WHERE { ?q feo:hasParameter ?p . OPTIONAL { ?p feo:hasCharacteristic ?c } }`},
		{"union", `SELECT ?x WHERE { { ?x a feo:SystemCharacteristic } UNION { ?x a feo:UserCharacteristic } }`},
		{"cross-filter", `SELECT ?a ?b WHERE { ?a a feo:SystemCharacteristic . ?b a feo:UserCharacteristic . FILTER(?a != ?b) }`},
		{"path-in-bgp", `SELECT ?t WHERE { ?x a feo:SystemCharacteristic . ?x a ?t . ?t (rdfs:subClassOf+) feo:Characteristic }`},
		{"not-exists", `SELECT ?t WHERE { ?t rdfs:subClassOf feo:Characteristic . FILTER NOT EXISTS { ?s rdfs:subClassOf ?t } }`},
	}
	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			got, want := runBothOrders(t, g, tc.query)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("solutions differ\nreordered:\n%s\nnaive:\n%s",
					strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}
}
