// Package repro's top-level benchmark suite regenerates and times every
// artifact of the paper's evaluation (Table I, Figures 1-4, Listings 1-3)
// plus the ablation and scaling experiments DESIGN.md motivates (A1-A4).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The paper reports no absolute timings (its evaluation is task-based
// competency questions), so the comparison recorded in EXPERIMENTS.md is
// about result *content*: each BenchmarkListing*/BenchmarkTable1/
// BenchmarkFigure* first asserts the paper's expected rows are present and
// then times regeneration.
package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/feo"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/foodkg"
	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/paper"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// requireContains fails the benchmark when the regenerated artifact lost
// one of the paper's expected values.
func requireContains(b *testing.B, artifact, out string, wants ...string) {
	b.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			b.Fatalf("%s: missing expected %q in:\n%s", artifact, w, out)
		}
	}
}

// ---- Listings 1-3 (the paper's competency-question queries) ----

func BenchmarkListing1_Contextual(b *testing.B) {
	g, _ := ontology.Dataset(ontology.CQ1)
	q, err := sparql.ParseQuery(paper.Listing1Query)
	if err != nil {
		b.Fatal(err)
	}
	res, _ := sparql.Execute(g, q)
	requireContains(b, "listing1", res.Table(), "feo:Autumn", "feo:SeasonCharacteristic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Execute(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListing2_Contrastive(b *testing.B) {
	g, _ := ontology.Dataset(ontology.CQ2)
	q, err := sparql.ParseQuery(paper.Listing2Query)
	if err != nil {
		b.Fatal(err)
	}
	res, _ := sparql.Execute(g, q)
	requireContains(b, "listing2", res.Table(),
		"feo:Autumn", "feo:SeasonCharacteristic", "feo:Broccoli", "feo:AllergicFoodCharacteristic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Execute(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListing3_Counterfactual(b *testing.B) {
	g, _ := ontology.Dataset(ontology.CQ3)
	q, err := sparql.ParseQuery(paper.Listing3Query)
	if err != nil {
		b.Fatal(err)
	}
	res, _ := sparql.Execute(g, q)
	requireContains(b, "listing3", res.Table(),
		"feo:recommends", "feo:Spinach", "feo:SpinachFrittata", "feo:forbids", "feo:Sushi")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Execute(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table I: one sub-benchmark per explanation type ----

func BenchmarkTable1(b *testing.B) {
	g, r := ontology.Dataset(ontology.CQAll)
	g.Add(ontology.Sushi, ontology.FoodCalories, rdf.NewInt(450))
	vegan := rdf.NewIRI(rdf.KGNS + "diet/Vegan")
	g.Add(vegan, rdf.TypeIRI, ontology.FoodDiet)
	engine := core.NewEngine(g, r)
	engine.SetCoach(healthcoach.New(g, healthcoach.DefaultWeights()))

	questions := map[core.ExplanationType]core.Question{
		core.CaseBased:       {Type: core.CaseBased, Primary: ontology.BroccoliCheddarSoup, User: ontology.User1},
		core.Contextual:      {Type: core.Contextual, Primary: ontology.CauliflowerPotatoCurry},
		core.Contrastive:     {Type: core.Contrastive, Primary: ontology.ButternutSquashSoup, Secondary: ontology.BroccoliCheddarSoup},
		core.Counterfactual:  {Type: core.Counterfactual, Primary: ontology.Pregnancy},
		core.Everyday:        {Type: core.Everyday, Primary: ontology.Spinach},
		core.Scientific:      {Type: core.Scientific, Primary: ontology.Spinach},
		core.SimulationBased: {Type: core.SimulationBased, Primary: ontology.Sushi},
		core.Statistical:     {Type: core.Statistical, Primary: vegan, User: ontology.User2},
		core.TraceBased:      {Type: core.TraceBased, Primary: ontology.ButternutSquashSoup, User: ontology.User2},
	}
	for _, et := range core.AllExplanationTypes() {
		q := questions[et]
		b.Run(et.String(), func(b *testing.B) {
			ex, err := engine.Explain(q)
			if err != nil || ex.Summary == "" {
				b.Fatalf("%v: %v", et, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Explain(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figures 1-4 ----

func BenchmarkFigure1_CharacteristicHierarchy(b *testing.B) {
	requireContains(b, "figure1", paper.Figure1(),
		"feo:Characteristic", "feo:Parameter", "feo:UserCharacteristic", "feo:SystemCharacteristic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = paper.Figure1()
	}
}

func BenchmarkFigure2_PropertyGraph(b *testing.B) {
	out := paper.Figure2()
	requireContains(b, "figure2", out, "feo:forbids", "feo:isCharacteristicOf", "feo:isOpposedBy")
	if strings.Count(out, "^-- feo:forbids") < 2 {
		b.Fatal("figure2 lost the multiple-inheritance example")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = paper.Figure2()
	}
}

func BenchmarkFigure3_FactFoilMatrix(b *testing.B) {
	requireContains(b, "figure3", paper.Figure3(), "feo:Autumn", "feo:Broccoli")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = paper.Figure3()
	}
}

func BenchmarkFigure4_InferredSubgraph(b *testing.B) {
	requireContains(b, "figure4", paper.Figure4(), "[inferred]",
		"feo:CauliflowerPotatoCurry feo:hasCharacteristic feo:Autumn")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = paper.Figure4()
	}
}

// ---- A1: naive vs semi-naive reasoner (the paper's Pellet motivation:
// "a reasoner known to handle individuals more efficiently") ----

func BenchmarkReasoner_NaiveVsSemiNaive(b *testing.B) {
	for _, size := range []int{50, 200, 800} {
		cfg := foodkg.DefaultConfig()
		cfg.Recipes = size
		cfg.Ingredients = size / 2
		cfg.Users = size / 10
		base := ontology.TBox()
		base.Merge(foodkg.Generate(cfg).Graph)
		for _, mode := range []struct {
			name  string
			naive bool
		}{{"semi-naive", false}, {"naive", true}} {
			b.Run(fmt.Sprintf("%s/recipes=%d", mode.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g := base.Clone()
					b.StartTimer()
					reasoner.New(reasoner.Options{Naive: mode.naive}).Materialize(g)
				}
			})
		}
	}
}

// ---- A2: materialized transitive closure vs SPARQL property-path ----

func BenchmarkPath_TransitiveClosure(b *testing.B) {
	g, _ := ontology.Dataset(ontology.CQAll)
	// Materialized lookup: hasCharacteristic is already closed.
	b.Run("materialized-lookup", func(b *testing.B) {
		q, _ := sparql.ParseQuery(`SELECT ?c WHERE { feo:CauliflowerPotatoCurry feo:hasCharacteristic ?c }`)
		for i := 0; i < b.N; i++ {
			res, err := sparql.Execute(g, q)
			if err != nil || res.Len() == 0 {
				b.Fatal(err)
			}
		}
	})
	// Path evaluation: recompute the closure at query time over the
	// single-step sub-properties.
	b.Run("property-path", func(b *testing.B) {
		q, _ := sparql.ParseQuery(`SELECT ?c WHERE { feo:CauliflowerPotatoCurry (feo:hasIngredient|feo:availableIn)+ ?c }`)
		for i := 0; i < b.N; i++ {
			res, err := sparql.Execute(g, q)
			if err != nil || res.Len() == 0 {
				b.Fatal(err)
			}
		}
	})
}

// ---- A3: scaling sweep over FoodKG size (load, reason, query) ----

func BenchmarkScale_ReasonAndQuery(b *testing.B) {
	for _, recipes := range []int{100, 400, 1600} {
		cfg := foodkg.DefaultConfig()
		cfg.Recipes = recipes
		cfg.Ingredients = recipes / 2
		cfg.Users = recipes / 20
		kg := foodkg.Generate(cfg)
		b.Run(fmt.Sprintf("reason/recipes=%d", recipes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := ontology.TBox()
				g.Merge(kg.Graph)
				b.StartTimer()
				reasoner.New(reasoner.Options{}).Materialize(g)
			}
		})
		// Contextual explanation latency at scale.
		g := ontology.TBox()
		g.Merge(kg.Graph)
		r := reasoner.New(reasoner.Options{})
		r.Materialize(g)
		engine := core.NewEngine(g, r)
		q := core.Question{Type: core.Contextual, Primary: kg.Recipes[0]}
		// Warm up once: the first ask asserts the question individual and
		// re-materializes; steady-state latency is what A3 measures.
		if _, err := engine.Explain(q); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("explain/recipes=%d", recipes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Explain(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- A5: incremental (delta) re-materialization at serve shape ----

// benchQuestion builds the triples the explanation engine asserts for one
// ad-hoc question: the shape every /explain request writes.
func benchQuestion(i int, recipe rdf.Term) []rdf.Triple {
	q := rdf.NewIRI(rdf.KGNS + fmt.Sprintf("question/bench%d", i))
	return []rdf.Triple{
		{S: q, P: rdf.TypeIRI, O: ontology.FEOFoodQuestion},
		{S: q, P: rdf.TypeIRI, O: ontology.EOContextualExplanation},
		{S: q, P: rdf.CommentIRI, O: rdf.NewLiteral(fmt.Sprintf("bench ask %d", i))},
		{S: q, P: ontology.FEOHasParameter, O: recipe},
	}
}

// BenchmarkMaterializeDelta measures re-classification after asserting one
// question into a large synthetic FoodKG: the delta path against the
// historical full re-run it replaces. The delta number must not scale with
// graph size — that gap is the PR's headline claim, and bench_compare
// gates both sub-benchmarks.
func BenchmarkMaterializeDelta(b *testing.B) {
	cfg := foodkg.DefaultConfig()
	cfg.Recipes = 800
	cfg.Ingredients = 400
	cfg.Users = 40
	kg := foodkg.Generate(cfg)
	base := ontology.TBox()
	base.Merge(kg.Graph)
	recipe := kg.Recipes[0]

	b.Run("delta", func(b *testing.B) {
		g := base.Clone()
		r := reasoner.New(reasoner.Options{TraceDerivations: true})
		r.Materialize(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := r.MaterializeDelta(g, benchQuestion(i, recipe))
			if !st.Delta {
				b.Fatal("expected the incremental path")
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		g := base.Clone()
		r := reasoner.New(reasoner.Options{TraceDerivations: true})
		r.Materialize(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range benchQuestion(i, recipe) {
				g.AddTriple(t)
			}
			r.Materialize(g)
		}
	})
}

// BenchmarkExplainWarm measures steady-state serve latency of a warm
// session: every iteration asks a fresh question (new text → new question
// individual), so each Explain pays the full write path — assertion,
// incremental re-classification, query, render — the way `feo serve`
// does per /explain request.
func BenchmarkExplainWarm(b *testing.B) {
	cfg := foodkg.DefaultConfig()
	cfg.Recipes = 800
	cfg.Ingredients = 400
	cfg.Users = 40
	sess := feo.NewSession(feo.Options{Data: feo.DataSynthetic, KG: cfg})
	recipes := sess.Recipes()
	if len(recipes) == 0 {
		b.Fatal("no recipes")
	}
	if _, err := sess.Explain(feo.Question{
		Type: feo.Contextual, Primary: recipes[0], Text: "warmup",
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Explain(feo.Question{
			Type:    feo.Contextual,
			Primary: recipes[i%len(recipes)],
			Text:    fmt.Sprintf("warm ask %d", i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A4: SPARQL operator micro-benchmarks ----

func BenchmarkSPARQL_Operators(b *testing.B) {
	cfg := foodkg.DefaultConfig()
	kg := foodkg.Generate(cfg)
	g := ontology.TBox()
	g.Merge(kg.Graph)
	reasoner.New(reasoner.Options{}).Materialize(g)
	cases := []struct{ name, query string }{
		{"bgp-join", `SELECT ?r ?i WHERE { ?r a food:Recipe . ?r feo:hasIngredient ?i }`},
		{"filter", `SELECT ?r WHERE { ?r food:calories ?c . FILTER(?c > 400) }`},
		{"not-exists", `SELECT ?r WHERE { ?r a food:Recipe . FILTER NOT EXISTS { ?r feo:compatibleWithDiet ?d } }`},
		{"optional", `SELECT ?r ?d WHERE { ?r a food:Recipe . OPTIONAL { ?r feo:compatibleWithDiet ?d } }`},
		{"path-plus", `SELECT ?c WHERE { ?r a food:Recipe . ?r (feo:hasIngredient|feo:availableIn)+ ?c } LIMIT 500`},
		{"aggregate", `SELECT ?i (COUNT(?r) AS ?n) WHERE { ?r feo:hasIngredient ?i } GROUP BY ?i`},
		{"order-limit", `SELECT ?r ?c WHERE { ?r food:calories ?c } ORDER BY DESC(?c) LIMIT 10`},
	}
	for _, tc := range cases {
		q, err := sparql.ParseQuery(tc.query)
		if err != nil {
			b.Fatalf("%s: %v", tc.name, err)
		}
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sparql.Execute(g, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- substrate micro-benchmarks ----

func BenchmarkStore_AddLookup(b *testing.B) {
	terms := make([]rdf.Term, 200)
	for i := range terms {
		terms[i] = rdf.NewIRI(fmt.Sprintf("http://e/t%d", i))
	}
	b.Run("add", func(b *testing.B) {
		g := store.New()
		for i := 0; i < b.N; i++ {
			g.Add(terms[i%200], terms[(i/200)%200], terms[(i/40000)%200])
		}
	})
	g := store.New()
	for i := 0; i < 40000; i++ {
		g.Add(terms[i%200], terms[(i/200)%200], terms[i%7])
	}
	b.Run("lookup-spo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Has(terms[i%200], terms[(i/200)%200], terms[i%7])
		}
	})
	b.Run("match-pattern", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Count(terms[i%200], store.Wildcard, store.Wildcard)
		}
	})
}

func BenchmarkTurtle_ParseOntology(b *testing.B) {
	var sb strings.Builder
	g := ontology.TBox()
	if err := writeTTL(&sb, g); err != nil {
		b.Fatal(err)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseTTL(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- durability: boot-time and write-path benchmarks ----

// durableBootConfig is the recipes=800 FoodKG the boot benchmarks compare
// on — the same scale BenchmarkMaterializeDelta/ExplainWarm use.
func durableBootConfig() foodkg.Config {
	cfg := foodkg.DefaultConfig()
	cfg.Recipes = 800
	cfg.Ingredients = 400
	cfg.Users = 40
	return cfg
}

// BenchmarkTurtleBoot measures the historical cold-boot path a durable
// directory replaces: parse the materialized graph's Turtle export back
// into a store and re-run the reasoner to rebuild the closure and its
// derivation traces. This is what every process start paid before
// snapshots existed (and what non-durable sessions still pay).
func BenchmarkTurtleBoot(b *testing.B) {
	kg := foodkg.Generate(durableBootConfig())
	base := ontology.TBox()
	base.Merge(kg.Graph)
	// Export the graph *before* materialization: the historical boot
	// parsed base documents and computed the closure (and its traces)
	// from scratch, so that is what each iteration must pay.
	var ttl strings.Builder
	if err := turtle.Write(&ttl, base); err != nil {
		b.Fatal(err)
	}
	doc := ttl.String()
	reasoner.New(reasoner.Options{TraceDerivations: true}).Materialize(base)
	want := base.Len()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := parseTTL(doc)
		if err != nil {
			b.Fatal(err)
		}
		r := reasoner.New(reasoner.Options{TraceDerivations: true})
		r.Materialize(g)
		if g.Len() != want {
			b.Fatalf("boot lost triples: %d vs %d", g.Len(), want)
		}
	}
}

// BenchmarkSnapshotLoad measures the durable cold boot: feo.Open on a
// compacted data directory — binary snapshot load plus closure restore,
// no parsing and no rule evaluation. Gate-compared against
// BenchmarkTurtleBoot: the snapshot path must stay measurably faster.
func BenchmarkSnapshotLoad(b *testing.B) {
	dir := b.TempDir()
	seed, err := feo.Open(feo.Options{Data: feo.DataSynthetic, KG: durableBootConfig(), DataDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	want := seed.Graph().Len()
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := feo.Open(feo.Options{DataDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if !s.Replayed() || s.Graph().Len() != want {
			b.Fatalf("boot wrong: replayed=%v len=%d want %d", s.Replayed(), s.Graph().Len(), want)
		}
		s.Close()
	}
}

// BenchmarkWALAppend measures the per-commit durability overhead a
// mutating session call pays: framing, checksumming, and writing one
// representative record (a question's assertions plus its inferred
// consequences) to the log. SyncNever isolates the write path itself from
// fsync latency, which the sync policy — not the code — decides.
func BenchmarkWALAppend(b *testing.B) {
	g := store.New()
	g.Add(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	st, _, err := durable.Open(b.TempDir(), durable.Options{Sync: durable.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Compact(g, reasoner.ClosureState{}); err != nil {
		b.Fatal(err)
	}
	tr := func(n string) rdf.Triple {
		return rdf.Triple{
			S: rdf.NewIRI("https://purl.org/heals/foodkg/question/q0001"),
			P: rdf.NewIRI(rdf.FEONS + n),
			O: rdf.NewIRI("http://example.org/recipe/42"),
		}
	}
	rec := durable.Record{
		Ops: []store.TermOp{
			{T: tr("hasParameter")}, {T: tr("answeredBy")},
			{T: tr("inferredA")}, {T: tr("inferredB")}, {T: tr("inferredC")},
		},
		EndVersion:    1,
		TotalInferred: 3,
		Derivations: []reasoner.TracedDerivation{
			{Conclusion: tr("inferredA"), Rule: "cax-sco", Premises: []rdf.Triple{tr("hasParameter")}},
			{Conclusion: tr("inferredB"), Rule: "prp-dom", Premises: []rdf.Triple{tr("answeredBy")}},
			{Conclusion: tr("inferredC"), Rule: "prp-spo1", Premises: []rdf.Triple{tr("inferredA")}},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.EndVersion = uint64(i + 1)
		if err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
		if st.WALSize() > 64<<20 {
			b.StopTimer()
			if err := st.Compact(g, reasoner.ClosureState{}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkSnapshotPin measures the cost of pinning a read handle —
// Session.Snapshot() is an atomic dirty-check, an atomic pointer load,
// and two small allocations (handle + stateless coach) — and of a cheap
// read against the pin. This is the fixed per-request overhead every
// serve handler now pays, so it must stay well under a microsecond.
func BenchmarkSnapshotPin(b *testing.B) {
	sess := feo.NewSession(feo.Options{})
	b.Run("pin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if sn := sess.Snapshot(); sn.Version() == 0 {
				b.Fatal("unpublished session")
			}
		}
	})
	b.Run("pin+users", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(sess.Snapshot().Users()) == 0 {
				b.Fatal("no users")
			}
		}
	})
}

// BenchmarkReadUnderWrite measures serve-side reader latency while a
// writer commits continuously: each iteration pins a snapshot and runs
// the recommendation read path against it, with a background goroutine
// driving Update commits as fast as the session will take them. Under
// the MVCC design the reader never queues behind the writer, so this
// should track the quiescent read cost; the "quiet" sub-benchmark is the
// no-writer baseline the contended number is judged against.
func BenchmarkReadUnderWrite(b *testing.B) {
	newBenchSession := func(b *testing.B) (*feo.Session, feo.Term) {
		cfg := foodkg.DefaultConfig()
		cfg.Recipes = 400
		cfg.Ingredients = 200
		cfg.Users = 20
		sess := feo.NewSession(feo.Options{Data: feo.DataSynthetic, KG: cfg})
		users := sess.Users()
		if len(users) == 0 {
			b.Fatal("no users")
		}
		return sess, users[0]
	}
	read := func(b *testing.B, sess *feo.Session, user feo.Term) {
		sn := sess.Snapshot()
		if recs := sn.Recommend(user, 5); len(recs) == 0 {
			b.Fatal("no recommendations")
		}
	}
	b.Run("quiet", func(b *testing.B) {
		sess, user := newBenchSession(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			read(b, sess, user)
		}
	})
	b.Run("contended", func(b *testing.B) {
		sess, user := newBenchSession(b)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sess.Update(fmt.Sprintf(
					"INSERT DATA { <http://x/churn/s%d> <http://x/churn/p> <http://x/churn/o> . }", i)); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			read(b, sess, user)
		}
		b.StopTimer()
		close(stop)
		<-done
	})
}
