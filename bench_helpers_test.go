package repro

import (
	"io"

	"repro/internal/store"
	"repro/internal/turtle"
)

// Thin indirections so bench_test.go reads cleanly.

func writeTTL(w io.Writer, g *store.Graph) error { return turtle.Write(w, g) }

func parseTTL(doc string) (*store.Graph, error) { return turtle.Parse(doc) }
