#!/usr/bin/env bash
# Run the repository benchmark suite and record machine-readable results so
# successive PRs accumulate a performance trajectory.
#
# Usage:
#   scripts/bench.sh [OUT.json] [BENCH_REGEX]
#
# Defaults: OUT.json = BENCH.json, BENCH_REGEX = "." (everything). Each
# benchmark is run with -benchmem -count=3; the recorded numbers are the
# per-metric minima over the three runs (least-noise estimate).
#
# The sweep covers every package (./...), so internal/... benchmarks join
# the recorded trajectory alongside the root artifact suite. Benchmark
# names are recorded without their package path; keep top-level Benchmark
# function names unique across packages.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
pattern="${2:-.}"
count=3

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem -count="$count" ./... | tee "$raw" >&2

awk -v out="$out" '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i - 1)
        if ($(i) == "B/op")      bop = $(i - 1)
        if ($(i) == "allocs/op") aop = $(i - 1)
    }
    if (!(name in min_ns) || ns + 0 < min_ns[name] + 0) min_ns[name] = ns
    if (!(name in min_b) || bop + 0 < min_b[name] + 0)  min_b[name] = bop
    if (!(name in min_a) || aop + 0 < min_a[name] + 0)  min_a[name] = aop
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "{\n  \"benchmarks\": [\n" > out
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, min_ns[name], min_b[name], min_a[name], (i < n ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
}' "$raw"

echo "wrote $out" >&2
