#!/usr/bin/env bash
# Print per-package statement coverage and gate internal/sparql against a
# recorded baseline.
#
# Usage:
#   scripts/coverage.sh [--min-sparql PCT]
#
# The SPARQL engine is the package this repository's correctness story
# leans on (ID-row evaluator, plan cache, reference-equivalence harness),
# so its coverage is enforced: if it drops below the baseline recorded
# here, the build fails. Raise the baseline when new tests land; never
# lower it to make a regression pass.
set -euo pipefail
cd "$(dirname "$0")/.."

# Baseline recorded when the coverage gate landed (PR 4). The measured
# value then was ~87%; the gate sits a little below to absorb run-to-run
# variation from fuzz-seed corpora and -shuffle orderings.
min_sparql=85.0
if [ "${1:-}" = "--min-sparql" ]; then
    min_sparql="$2"
fi

out="$(go test -count=1 -cover ./... 2>&1 | tee /dev/stderr)"

sparql_line="$(printf '%s\n' "$out" | grep -E "^ok[[:space:]]+repro/internal/sparql[[:space:]]" || true)"
if [ -z "$sparql_line" ]; then
    echo "coverage: internal/sparql did not report (build or test failure?)" >&2
    exit 1
fi
pct="$(printf '%s\n' "$sparql_line" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+')"
if [ -z "$pct" ]; then
    echo "coverage: could not extract internal/sparql coverage" >&2
    exit 1
fi
echo "internal/sparql coverage: ${pct}% (baseline ${min_sparql}%)"
awk -v got="$pct" -v min="$min_sparql" 'BEGIN { exit !(got+0 >= min+0) }' || {
    echo "coverage: internal/sparql ${pct}% is below the ${min_sparql}% baseline" >&2
    exit 1
}
