#!/usr/bin/env bash
# Compare two BENCH_*.json files (as written by scripts/bench.sh) and fail
# on ns/op regressions beyond a tolerance. This is the CI gate that turns
# the repository's speedup claims into an enforced invariant instead of
# prose: any paper-listing, Table I, figure, or reasoner benchmark that
# gets slower than the committed trajectory point by more than the
# tolerance breaks the build.
#
# Usage:
#   scripts/bench_compare.sh OLD.json NEW.json [--tolerance PCT] [--filter REGEX]
#
#   OLD.json      committed trajectory point (e.g. the latest BENCH_N.json)
#   NEW.json      freshly recorded run to judge (e.g. BENCH_ci.json)
#   --tolerance   max allowed ns/op increase in percent (default 15)
#   --filter      benchmarks the gate applies to (default: the paper
#                 artifact suite, the reasoner ablations, the store's
#                 bitset/dense-pattern suite, and the durability boot and
#                 write paths — the noisier micro/scale benchmarks are
#                 reported but not gated)
#
# Only the "benchmarks" array of each file is read (BENCH_*.json files may
# carry extra hand-written arrays such as baseline_seed). Benchmarks
# present in just one file are reported as added/removed, never failed:
# the gate judges regressions, not suite membership.
set -euo pipefail

tolerance=15
filter='^Benchmark(Listing|Table1|Figure|Reasoner|Bitset|StoreMatch|MaterializeSolutions|MaterializeDelta|ExplainWarm|PlanCache|SnapshotLoad|TurtleBoot|WALAppend|SnapshotPin|ReadUnderWrite)'

args=()
while [ $# -gt 0 ]; do
    case "$1" in
        --tolerance) tolerance="$2"; shift 2 ;;
        --tolerance=*) tolerance="${1#*=}"; shift ;;
        --filter) filter="$2"; shift 2 ;;
        --filter=*) filter="${1#*=}"; shift ;;
        -h|--help) sed -n '2,22p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) args+=("$1"); shift ;;
    esac
done
if [ "${#args[@]}" -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json [--tolerance PCT] [--filter REGEX]" >&2
    exit 2
fi
old="${args[0]}"
new="${args[1]}"
for f in "$old" "$new"; do
    [ -r "$f" ] || { echo "bench_compare: cannot read $f" >&2; exit 2; }
done

# extract NAME NS_OP pairs from the "benchmarks" array of a bench.sh file.
# Handles both the compact one-object-per-line layout bench.sh emits and
# pretty-printed files with one key per line.
extract() {
    awk '
    /"benchmarks"[[:space:]]*:/ { inb = 1; next }
    inb && /^[[:space:]]*\]/    { inb = 0 }
    inb {
        if (match($0, /"name":[[:space:]]*"[^"]*"/)) {
            name = substr($0, RSTART, RLENGTH)
            sub(/.*"name":[[:space:]]*"/, "", name); sub(/"$/, "", name)
        }
        if (match($0, /"ns_op":[[:space:]]*[0-9.eE+]+/)) {
            ns = substr($0, RSTART, RLENGTH)
            sub(/.*:[[:space:]]*/, "", ns)
            if (name != "") { print name, ns; name = "" }
        }
    }' "$1"
}

oldtab="$(mktemp)"; newtab="$(mktemp)"
trap 'rm -f "$oldtab" "$newtab"' EXIT
extract "$old" > "$oldtab"
extract "$new" > "$newtab"
[ -s "$oldtab" ] || { echo "bench_compare: no benchmarks found in $old" >&2; exit 2; }
[ -s "$newtab" ] || { echo "bench_compare: no benchmarks found in $new" >&2; exit 2; }

awk -v tol="$tolerance" -v filter="$filter" -v oldfile="$old" -v newfile="$new" '
NR == FNR { old[$1] = $2; next }
{
    name = $1; ns = $2; seen[name] = 1
    if (!(name in old)) { added++; printf "  new      %-60s %12.0f ns/op (no baseline)\n", name, ns; next }
    pct = (ns - old[name]) / old[name] * 100
    gated = (name ~ filter)
    status = "ok"
    if (pct > tol) status = gated ? "FAIL" : "slower"
    if (status == "FAIL") { fails++ }
    printf "  %-8s %-60s %12.0f -> %12.0f ns/op  %+7.1f%%%s\n", \
        status, name, old[name], ns, pct, gated ? "" : "  [ungated]"
}
END {
    for (name in old) if (!(name in seen)) { removed++ }
    if (removed) printf "  (%d benchmark(s) in %s missing from %s)\n", removed, oldfile, newfile
    printf "\nbench_compare: tolerance %s%%, gate /%s/\n", tol, filter
    if (fails) { printf "bench_compare: FAIL — %d gated benchmark(s) regressed beyond %s%%\n", fails, tol; exit 1 }
    print "bench_compare: OK — no gated regression"
}' "$oldtab" "$newtab"
